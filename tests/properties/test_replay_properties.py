"""Property: trace record -> replay -> re-record is bit-identical.

Hypothesis draws (litmus kernel, engine) pairs across the whole registry —
determinate and intentionally broken kernels alike, intra and inter
models — and the replayed run must reproduce the recorded event stream
*and* the final :class:`~repro.sim.stats.MachineStats` exactly.  Broken
kernels matter here: replay promises to reproduce whatever the trace says
happened, not what should have happened.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import INTRA_BASE, INTRA_BMI, inter_config
from repro.eval.runner import run_litmus
from repro.obs.trace import Tracer
from repro.workloads.litmus import LITMUS, machine_params
from repro.workloads.replay import run_replay

_INTER_CONFIGS = (inter_config("Addr"), inter_config("Addr+L"))
_INTRA_CONFIGS = (INTRA_BASE, INTRA_BMI)

case_strategy = st.tuples(
    st.sampled_from(sorted(LITMUS)),
    st.sampled_from(("ref", "fast")),
    st.integers(min_value=0, max_value=1),
)


@given(case_strategy)
@settings(max_examples=25, deadline=None)
def test_record_replay_rerecord_is_bit_identical(case):
    name, engine, cfg_idx = case
    kernel = LITMUS[name]
    config = (
        _INTER_CONFIGS[cfg_idx] if kernel.model == "inter"
        else _INTRA_CONFIGS[cfg_idx]
    )
    rec = Tracer()
    first = run_litmus(
        name, config, verify=False, tracer=rec, memory_digest=True,
        engine=engine,
    )
    rep = Tracer()
    second = run_replay(
        rec.events, config, machine_params=machine_params(kernel),
        num_threads=kernel.threads, tracer=rep, memory_digest=True,
        engine=engine,
    )
    assert rep.events == rec.events
    assert second.stats == first.stats
    assert second.memory_digest == first.memory_digest


@given(case_strategy)
@settings(max_examples=10, deadline=None)
def test_replay_is_idempotent(case):
    """Replaying the re-recorded trace changes nothing further."""
    name, engine, cfg_idx = case
    kernel = LITMUS[name]
    config = (
        _INTER_CONFIGS[cfg_idx] if kernel.model == "inter"
        else _INTRA_CONFIGS[cfg_idx]
    )
    rec = Tracer()
    run_litmus(name, config, verify=False, tracer=rec, engine=engine)
    rep1 = Tracer()
    run_replay(
        rec.events, config, machine_params=machine_params(kernel),
        num_threads=kernel.threads, tracer=rep1, engine=engine,
    )
    rep2 = Tracer()
    run_replay(
        rep1.events, config, machine_params=machine_params(kernel),
        num_threads=kernel.threads, tracer=rep2, engine=engine,
    )
    assert rep2.events == rep1.events == rec.events
