"""Property-based tests: cache structure against a reference model."""

from hypothesis import given, settings, strategies as st

from repro.common.params import CacheParams
from repro.mem.cache import Cache
from repro.mem.line import CacheLine


def make_cache(assoc=2, sets=4):
    return Cache(
        CacheParams(
            size_bytes=assoc * sets * 64, assoc=assoc, line_bytes=64, round_trip=1
        )
    )


#: Operations: ("insert", addr) or ("lookup", addr) or ("remove", addr).
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "remove"]),
        st.integers(min_value=0, max_value=31),
    ),
    max_size=60,
)


class RefCache:
    """Reference LRU model: per-set ordered list, MRU at the end."""

    def __init__(self, assoc, sets):
        self.assoc = assoc
        self.sets = [[] for _ in range(sets)]

    def _set(self, addr):
        return self.sets[addr % len(self.sets)]

    def insert(self, addr):
        s = self._set(addr)
        if addr in s:
            s.remove(addr)
        elif len(s) >= self.assoc:
            s.pop(0)
        s.append(addr)

    def lookup(self, addr):
        s = self._set(addr)
        if addr in s:
            s.remove(addr)
            s.append(addr)
            return True
        return False

    def remove(self, addr):
        s = self._set(addr)
        if addr in s:
            s.remove(addr)

    def resident(self):
        return sorted(a for s in self.sets for a in s)


@given(ops_strategy)
@settings(max_examples=200)
def test_cache_matches_reference_lru(ops):
    cache = make_cache()
    ref = RefCache(2, 4)
    for kind, addr in ops:
        if kind == "insert":
            cache.insert(CacheLine(addr, [0] * 16))
            ref.insert(addr)
        elif kind == "lookup":
            got = cache.lookup(addr) is not None
            want = ref.lookup(addr)
            assert got == want
        else:
            cache.remove(addr)
            ref.remove(addr)
        assert sorted(cache.resident_line_addrs()) == ref.resident()


@given(ops_strategy)
@settings(max_examples=100)
def test_occupancy_never_exceeds_capacity(ops):
    cache = make_cache(assoc=2, sets=2)
    for kind, addr in ops:
        if kind == "insert":
            cache.insert(CacheLine(addr, [0] * 16))
    assert cache.occupancy <= 4
    for s in cache._sets:
        assert len(s) <= 2


@given(st.sets(st.integers(min_value=0, max_value=15), max_size=16))
@settings(max_examples=100)
def test_dirty_mask_roundtrip(words):
    line = CacheLine(0, [0] * 16)
    for w in words:
        line.mark_dirty(w)
    assert set(line.dirty_words()) == words
    assert line.num_dirty_words() == len(words)
    line.clean()
    assert not line.dirty
