"""Robustness: deadlock detection, capacity pressure, placement permutations."""

import pytest

from repro import Machine, intra_block_machine
from repro.common.errors import DeadlockError
from repro.common.params import (
    BufferParams,
    CacheParams,
    CoreParams,
    MachineParams,
    MeshParams,
)
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_CONFIGS, INTRA_HCC
from repro.isa import ops as isa


class TestDeadlockDetection:
    def test_missing_barrier_participant_is_detected(self):
        m = Machine(intra_block_machine(2), INTRA_HCC, num_threads=2)

        def program(ctx):
            if ctx.tid == 0:
                yield isa.Barrier(0, 2)  # thread 1 never arrives

        m.spawn_all(program)
        with pytest.raises(DeadlockError):
            m.run()

    def test_lock_never_released_blocks_waiter(self):
        m = Machine(intra_block_machine(2), INTRA_HCC, num_threads=2)

        def program(ctx):
            yield isa.LockAcquire(0)
            # Nobody releases: the second acquirer waits forever.

        m.spawn_all(program)
        with pytest.raises(DeadlockError):
            m.run()

    def test_flag_wait_without_set(self):
        m = Machine(intra_block_machine(2), INTRA_HCC, num_threads=1)

        def program(ctx):
            yield isa.FlagWait(0, 1)

        m.spawn(program)
        with pytest.raises(DeadlockError):
            m.run()


def tiny_l1_machine(num_cores=4):
    """A machine with a 4-line direct-mapped L1: constant capacity pressure."""
    return MachineParams(
        num_blocks=1,
        cores_per_block=num_cores,
        core=CoreParams(),
        l1=CacheParams(size_bytes=256, assoc=1, line_bytes=64, round_trip=2),
        l2_bank=CacheParams(size_bytes=8192, assoc=2, line_bytes=64, round_trip=11),
        l3_bank=None,
        num_l3_banks=0,
        mesh=MeshParams(),
        buffers=BufferParams(),
    )


class TestCapacityPressure:
    """Evictions must never lose dirty data on the incoherent hierarchy."""

    N = 128  # 8 lines per thread at 4 threads — far beyond the 4-line L1

    def _program(self, ctx, arr):
        n = self.N
        chunk = n // ctx.nthreads
        lo = ctx.tid * chunk
        # Write a wide stripe (evicting constantly), then sync, then read
        # a peer's stripe.
        for rep in range(2):
            for i in range(lo, lo + chunk):
                yield isa.Write(arr.addr(i), rep * 1000 + i)
            yield from ctx.barrier()
            peer = ((ctx.tid + 1) % ctx.nthreads) * chunk
            for k in range(chunk):
                v = yield isa.Read(arr.addr(peer + k))
                assert v == rep * 1000 + peer + k, (ctx.tid, rep, k, v)
            yield from ctx.barrier()

    @pytest.mark.parametrize("config", INTRA_CONFIGS, ids=lambda c: c.name)
    def test_eviction_heavy_producer_consumer(self, config):
        m = Machine(tiny_l1_machine(), config, num_threads=4)
        arr = m.array("a", self.N)
        m.spawn_all(lambda ctx: self._program(ctx, arr))
        m.run()
        for i in range(self.N):
            assert m.read_word(arr.addr(i)) == 1000 + i

    def test_meb_with_constant_eviction(self):
        """Stale MEB entries (written line evicted) must stay harmless."""
        m = Machine(tiny_l1_machine(1), INTRA_BMI, num_threads=1)
        arr = m.array("a", 64)

        def program(ctx):
            yield from ctx.lock_acquire(0, occ=False)
            for i in range(0, 64, 4):  # 16 lines through a 4-line L1
                yield isa.Write(arr.addr(i), i)
            yield from ctx.lock_release(0, occ=False)

        m.spawn(program)
        m.run()
        for i in range(0, 64, 4):
            assert m.read_word(arr.addr(i)) == i


class TestRacyInterleavings:
    def test_unsynchronized_same_word_writes_keep_some_value(self):
        """Racy writes are a program bug, but never produce garbage."""
        m = Machine(intra_block_machine(4), INTRA_BASE, num_threads=4)
        arr = m.array("a", 4)

        def program(ctx):
            yield isa.Write(arr.addr(0), 100 + ctx.tid)
            yield isa.WB(arr.addr(0), 4)

        m.spawn_all(program)
        m.run()
        assert m.read_word(arr.addr(0)) in {100, 101, 102, 103}
