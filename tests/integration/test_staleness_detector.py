"""Tests for the staleness detector (the incoherent-porting debugging aid)."""

import pytest

from repro import Machine, intra_block_machine
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_CONFIGS, INTRA_HCC
from repro.isa import ops as isa
from repro.workloads import MODEL_ONE


def test_missing_inv_is_detected():
    """A consumer that skips its INV reads stale data — and gets flagged."""
    m = Machine(
        intra_block_machine(2), INTRA_BASE, num_threads=2, detect_staleness=True
    )
    arr = m.array("a", 16)

    def program(ctx):
        if ctx.tid == 0:
            yield from ctx.flag_wait(9)  # consumer has warmed its copy
            yield isa.Write(arr.addr(0), 1)
            yield isa.WB(arr.addr(0), 4)
            yield from ctx.flag_set(0, wb=())
        else:
            yield isa.Read(arr.addr(0))  # warm a (zero) copy
            yield from ctx.flag_set(9, wb=())
            yield from ctx.flag_wait(0, inv=())  # annotation omitted!
            yield isa.Read(arr.addr(0))  # stale

    m.spawn_all(program)
    m.run()
    stale = m.stale_reads
    assert stale, "the detector must flag the un-invalidated read"
    assert any(e.core == 1 and e.got == 0 and e.latest == 1 for e in stale)


def test_correct_annotations_log_nothing():
    m = Machine(
        intra_block_machine(2), INTRA_BASE, num_threads=2, detect_staleness=True
    )
    arr = m.array("a", 16)

    def program(ctx):
        if ctx.tid == 0:
            yield isa.Write(arr.addr(0), 1)
            yield from ctx.flag_set(0)  # WB ALL inserted
        else:
            yield isa.Read(arr.addr(0))
            yield from ctx.flag_wait(0)  # INV ALL inserted
            v = yield isa.Read(arr.addr(0))
            assert v == 1

    m.spawn_all(program)
    m.run()
    assert m.stale_reads == []


@pytest.mark.parametrize("app", sorted(MODEL_ONE))
@pytest.mark.parametrize("config", [INTRA_BASE, INTRA_BMI], ids=lambda c: c.name)
def test_workload_annotations_are_sufficient(app, config):
    """No workload performs a single stale read under its annotations.

    Stronger than output verification: even intermediate values are always
    fresh when consumed.  (Raytrace's benign race publishes monotonically
    increasing progress counts; its racy peeks are annotated with INV, so
    they read the latest posted value and pass too.)
    """
    machine = Machine(
        intra_block_machine(4), config, num_threads=4, detect_staleness=True
    )
    MODEL_ONE[app](scale=0.4).run_on(machine)
    assert machine.stale_reads == [], machine.stale_reads[:5]


def test_hcc_has_no_detector():
    m = Machine(intra_block_machine(2), INTRA_HCC, num_threads=1)

    def program(ctx):
        yield isa.Compute(1)

    m.spawn(program)
    m.run()
    assert m.stale_reads == []
