"""Smoke tests: every example script runs to completion (guards doc rot)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Examples assert their own correctness internally; any failure raises.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
