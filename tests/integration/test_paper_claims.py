"""Integration tests asserting the paper's headline qualitative claims.

These run small-but-representative sweeps and check the *shapes* the
evaluation section reports — configuration orderings, who benefits, and the
storage delta — without pinning fragile absolute numbers.
"""

import pytest

from repro.common.params import inter_block_machine, intra_block_machine
from repro.core.config import (
    INTER_CONFIGS,
    INTRA_BASE,
    INTRA_BI,
    INTRA_BM,
    INTRA_BMI,
    INTRA_HCC,
)
from repro.eval.runner import run_inter, run_intra, sweep_inter
from repro.eval.storage import storage_report
from repro.sim.stats import StallCat, TrafficCat


@pytest.fixture(scope="module")
def raytrace_results():
    """Raytrace — the paper's fine-grain critical-section stress case."""
    out = {}
    for cfg in (INTRA_HCC, INTRA_BASE, INTRA_BM, INTRA_BI, INTRA_BMI):
        out[cfg.name] = run_intra(
            "raytrace",
            cfg,
            num_threads=16,
            scale=0.75,
            machine_params=intra_block_machine(16),
        )
    return out


class TestIntraBlockClaims:
    def test_base_is_the_slowest_incoherent_config(self, raytrace_results):
        base = raytrace_results["Base"].exec_time
        assert base > raytrace_results["B+M"].exec_time
        assert base > raytrace_results["B+M+I"].exec_time

    def test_meb_removes_wb_and_lock_stall(self, raytrace_results):
        """Section VII-B: the MEB "succeeds in eliminating most of the WB
        stall and lock stall" — the lock stall (waiters held up by the
        holder's pre-release WB ALL) is where the effect concentrates."""
        base = raytrace_results["Base"].stats
        bm = raytrace_results["B+M"].stats
        assert bm.stall_total(StallCat.WB) < base.stall_total(StallCat.WB)
        assert bm.stall_total(StallCat.LOCK) < 0.5 * base.stall_total(
            StallCat.LOCK
        )

    def test_ieb_alone_is_not_very_effective(self, raytrace_results):
        """Section VII-B: B+I returns to about Base height."""
        base = raytrace_results["Base"].exec_time
        bi = raytrace_results["B+I"].exec_time
        assert bi > 0.85 * base

    def test_bmi_is_best_incoherent_config(self, raytrace_results):
        bmi = raytrace_results["B+M+I"].exec_time
        for other in ("Base", "B+M", "B+I"):
            assert bmi <= raytrace_results[other].exec_time * 1.02

    def test_bmi_close_to_hcc(self, raytrace_results):
        """The headline: B+M+I within a small factor of hardware coherence."""
        ratio = (
            raytrace_results["B+M+I"].exec_time
            / raytrace_results["HCC"].exec_time
        )
        assert 0.8 <= ratio <= 1.3

    def test_incoherent_has_zero_invalidation_traffic(self, raytrace_results):
        """Section VII-B: 'B+M+I causes no invalidation traffic.'"""
        bmi = raytrace_results["B+M+I"].stats
        assert bmi.traffic[TrafficCat.INVALIDATION] == 0
        hcc = raytrace_results["HCC"].stats
        assert hcc.traffic[TrafficCat.INVALIDATION] > 0

    def test_hcc_executes_no_wbinv(self, raytrace_results):
        hcc = raytrace_results["HCC"].stats
        assert hcc.stall_total(StallCat.WB) == 0
        assert hcc.stall_total(StallCat.INV) == 0


class TestInterBlockClaims:
    @pytest.fixture(scope="class")
    def jacobi_results(self):
        return sweep_inter(["jacobi"], list(INTER_CONFIGS), scale=0.4)["jacobi"]

    def test_base_worst_addr_better_addr_l_best(self, jacobi_results):
        base = jacobi_results["Base"].exec_time
        addr = jacobi_results["Addr"].exec_time
        addr_l = jacobi_results["Addr+L"].exec_time
        assert base > addr >= addr_l

    def test_level_adaptive_reduces_global_ops(self, jacobi_results):
        addr = jacobi_results["Addr"].stats
        addr_l = jacobi_results["Addr+L"].stats
        assert addr_l.global_wb_lines < addr.global_wb_lines
        assert addr_l.global_inv_lines < addr.global_inv_lines
        assert addr_l.local_wb_lines > 0  # localized work really happened

    def test_reduction_apps_show_no_level_benefit(self):
        results = sweep_inter(["ep"], list(INTER_CONFIGS), scale=0.25)["ep"]
        addr = results["Addr"].stats
        addr_l = results["Addr+L"].stats
        assert addr_l.global_wb_lines == addr.global_wb_lines
        assert addr_l.global_inv_lines == addr.global_inv_lines


class TestStorageClaim:
    def test_section7a_delta(self):
        report = storage_report(inter_block_machine(4, 8))
        assert 95 <= report.saved_kbytes <= 110  # paper: ~102 KB
        # And it is "a very small savings" relative to the 16 MB L3 alone.
        l3_kb = 16 * 1024
        assert report.saved_kbytes < 0.01 * l3_kb
