"""Differential acceptance for the generative traffic engine.

Two heavyweight cross-checks over a 64-scenario sample of the generator's
whole parameter space (every pattern, varied seeds/threads/footprints):

* **Engine equivalence** — the packed-array fast engine must reproduce
  the reference engine's MachineStats and final-memory digest
  bit-for-bit on every scenario (the fleet relies on this to treat
  engines as interchangeable cache entries).
* **Chaos survival** — scenarios are timing-independent by construction,
  so a seeded fault plan may cost cycles but can never change the final
  memory: a 5-plan chaos pass over generated targets must report zero
  divergences.
"""

from __future__ import annotations

from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.eval.parallel import SweepCell, SweepExecutor
from repro.faults.chaos import ChaosTarget, run_chaos
from repro.faults.model import random_plans
from repro.workloads.gen import sample_specs

#: One fixed 64-scenario sample; the seed pins the whole matrix.
SPECS = sample_specs(64, seed=20160516)


def test_64_scenarios_ref_vs_fast_bit_identical():
    cells = []
    for spec in SPECS:
        for engine in ("ref", "fast"):
            cells.append(
                SweepCell.make(
                    "gen", spec.name, INTRA_BMI, spec=spec,
                    memory_digest=True, engine=engine,
                )
            )
    results = SweepExecutor().run_cells(cells)
    for i, spec in enumerate(SPECS):
        ref, fast = results[2 * i], results[2 * i + 1]
        assert fast.stats == ref.stats, spec.name
        assert fast.memory_digest == ref.memory_digest, spec.name


def test_generated_scenarios_survive_chaos():
    targets = [
        ChaosTarget("gen", spec.name, INTRA_BMI, INTRA_HCC, (("spec", spec),))
        for spec in SPECS[:12]
    ]
    plans = random_plans(5, seed=20160516)
    result = run_chaos(targets, plans, executor=SweepExecutor())
    assert result.clean, result.divergences
