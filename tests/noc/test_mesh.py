"""Tests for the 2D mesh model."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import inter_block_machine, intra_block_machine
from repro.noc.mesh import Mesh


@pytest.fixture
def mesh16():
    return Mesh(intra_block_machine(16))


@pytest.fixture
def mesh32():
    return Mesh(inter_block_machine())


class TestTopology:
    def test_16_cores_on_4x4(self, mesh16):
        assert mesh16.dim == 4
        assert mesh16.core_tile(0) == (0, 0)
        assert mesh16.core_tile(5) == (1, 1)
        assert mesh16.core_tile(15) == (3, 3)

    def test_l2_banks_colocated_with_cores(self, mesh16):
        for c in range(16):
            assert mesh16.l2_bank_tile(c) == mesh16.core_tile(c)

    def test_l3_banks_at_corners(self, mesh32):
        corners = {(0, 0), (0, mesh32.dim - 1), (mesh32.dim - 1, 0),
                   (mesh32.dim - 1, mesh32.dim - 1)}
        for b in range(4):
            assert mesh32.l3_bank_tile(b) in corners

    def test_out_of_range_core(self, mesh16):
        with pytest.raises(ConfigError):
            mesh16.core_tile(16)

    def test_memory_at_corners(self, mesh16):
        assert mesh16.mem_controller_tile(0) == (0, 0)
        assert mesh16.nearest_mem_tile((0, 1)) == (0, 0)


class TestLatency:
    def test_manhattan_hops(self, mesh16):
        assert mesh16.hops_between((0, 0), (2, 3)) == 5
        assert mesh16.hops_between((1, 1), (1, 1)) == 0

    def test_latency_is_hops_times_4(self, mesh16):
        assert mesh16.latency((0, 0), (1, 1)) == 8

    def test_core_to_l2_local_is_zero(self, mesh16):
        assert mesh16.core_to_l2(3, 3) == 0

    def test_core_to_core_symmetric(self, mesh16):
        assert mesh16.core_to_core(0, 15) == mesh16.core_to_core(15, 0)

    def test_avg_hops_positive(self, mesh16):
        assert 0 < mesh16.avg_hops() < 2 * mesh16.dim


class TestTraffic:
    def test_control_message_one_flit(self, mesh16):
        assert mesh16.control_flits() == 1

    def test_data_flits_header_plus_payload(self, mesh16):
        # 64B line on 16B links = 4 payload flits + 1 header.
        assert mesh16.data_flits(64) == 5
        assert mesh16.data_flits(4) == 2

    def test_flits_min_one(self, mesh16):
        assert mesh16.flits(0) == 1
