"""Tests for thread placement and block membership."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import inter_block_machine
from repro.noc.placement import (
    Placement,
    identity_placement,
    round_robin_placement,
)


@pytest.fixture
def machine():
    return inter_block_machine(4, 8)


def test_identity_blocks(machine):
    p = identity_placement(machine, 32)
    assert p.core_of(0) == 0
    assert p.block_of_thread(0) == 0
    assert p.block_of_thread(8) == 1
    assert p.same_block(0, 7)
    assert not p.same_block(7, 8)


def test_round_robin_scatters(machine):
    p = round_robin_placement(machine, 8)
    blocks = [p.block_of_thread(t) for t in range(8)]
    assert blocks == [0, 1, 2, 3, 0, 1, 2, 3]


def test_threads_in_block(machine):
    p = identity_placement(machine, 32)
    assert p.threads_in_block(2) == list(range(16, 24))


def test_thread_of_inverse(machine):
    p = identity_placement(machine, 16)
    assert p.thread_of(5) == 5
    assert p.thread_of(31) is None  # no thread there


def test_one_to_one_enforced(machine):
    with pytest.raises(ConfigError):
        Placement(machine, (0, 0, 1))


def test_core_range_enforced(machine):
    with pytest.raises(ConfigError):
        Placement(machine, (0, 99))


def test_too_many_threads(machine):
    with pytest.raises(ConfigError):
        identity_placement(machine, 33)


def test_custom_permutation(machine):
    p = Placement(machine, (31, 0, 8))
    assert p.block_of_thread(0) == 3
    assert p.block_of_thread(1) == 0
    assert p.block_of_thread(2) == 1
