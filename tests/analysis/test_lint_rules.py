"""Targeted rule-level tests for the annotation analyzer."""

from __future__ import annotations

import pytest

from repro.analysis import RULES
from repro.workloads.litmus import LITMUS

from tests.analysis.helpers import config_named, lint_litmus


def test_rule_catalog_is_complete():
    """Every rule has both severities' invariants and a doc anchor."""
    assert len(RULES) == 14
    for rule_id, rule in RULES.items():
        assert rule.rule_id == rule_id
        assert rule.severity in ("error", "warning")
        assert rule.anchor == f"docs/ANNOTATIONS.md#{rule_id.lower()}"
        assert rule.requirement and rule.remedy


def test_every_diagnostic_cites_a_documented_rule():
    """Findings must reference catalog rules — the docs anchor contract."""
    for name in LITMUS:
        report = lint_litmus(name)
        for finding in report.findings:
            assert finding.rule_id in RULES, (
                f"{name}: {finding.rule_id} not in the catalog"
            )
            assert RULES[finding.rule_id].anchor in finding.message


def test_redundant_wb_is_flagged_as_warning_only():
    """A WB over a never-dirtied range warns (WB-RED) without errors."""
    report = lint_litmus("redundant_wb_hint")
    assert report.errors == 0
    rules = [f.rule_id for f in report.findings]
    assert rules == ["WB-RED"]
    (finding,) = report.findings
    assert finding.severity == "warning"
    assert finding.array == "b"  # the never-written array, not 'a'


def test_inv_before_uninitialized_read_is_flagged():
    """INV over data no other thread ever wrote is INV-RED."""
    report = lint_litmus("inv_uninitialized_read")
    assert report.errors == 0
    rules = [f.rule_id for f in report.findings]
    assert rules == ["INV-RED"]


def test_three_thread_lock_handoff_clean():
    """Default CS annotations carry a word through t0 -> t1 -> t2."""
    report = lint_litmus("lock_handoff_three_threads")
    assert report.clean, report.render()


def test_three_thread_lock_handoff_broken():
    """Suppressing the CS annotations breaks both handoffs."""
    report = lint_litmus("lock_handoff_three_threads_broken")
    got = {f.rule_id for f in report.findings}
    assert {"WB-REL", "INV-ACQ"} <= got
    # Both handoffs (t0->t1 and t1->t2) must be reported, not just one.
    wb_pairs = {
        (f.producer, f.consumer)
        for f in report.findings
        if f.rule_id == "WB-REL"
    }
    assert {(0, 1), (1, 2)} <= wb_pairs


def test_figure6b_pattern_accepted():
    """racy_store/racy_load (WB-after-store, INV-before-load) is legal."""
    report = lint_litmus("racy_store_load")
    assert report.clean, report.render()


def test_canary_reports_flag_rules_with_sites():
    report = lint_litmus("missing_annotations")
    by_rule = {f.rule_id: f for f in report.findings}
    assert by_rule["WB-FLAG"].producer == 0
    assert by_rule["WB-FLAG"].consumer == 1
    assert "op" in by_rule["WB-FLAG"].producer_site


def test_inter_block_kernel_clean_under_both_lowerings():
    """The inter-block MP kernel lints clean under Base and Addr.

    Its helpers lower to WB_ALL_L3/INV_ALL_L2 under Base and to ranged
    WB_L3/INV_L2 under Addr — both reach the level shared by the blocks.
    """
    for cfg_name in ("Base", "Addr"):
        report = lint_litmus(
            "mp_flag_inter_block", config_named("inter", cfg_name)
        )
        assert report.clean, report.render()


def test_level_rules_on_cross_block_handoff():
    """Block-local WB/INV across blocks raises WB-LEVEL and INV-LEVEL.

    The producer writes back — but only into its block's L2 (plain WB);
    the consumer invalidates — but only its L1 (plain INV).  Both
    annotations exist, so the diagnosis must be the *level*, not a
    missing annotation.
    """
    from repro.analysis import lint_machine
    from repro.common.params import inter_block_machine
    from repro.core.machine import Machine
    from repro.isa import ops as isa

    config = config_named("inter", "Addr")
    machine = Machine(inter_block_machine(2, 2), config, num_threads=4)
    data = machine.array("data", 1)

    def producer(ctx):
        yield isa.Write(data.addr(0), 9)
        yield isa.WB(data.addr(0), 4)  # stops at the producer's block L2
        yield isa.FlagSet(1, 1)

    def passive(ctx):
        return
        yield  # pragma: no cover

    def consumer(ctx):
        yield isa.FlagWait(1, 1)
        yield isa.INV(data.addr(0), 4)  # drops the L1 copy only
        yield isa.Read(data.addr(0))

    for program in (producer, passive, passive, consumer):
        machine.spawn(program)
    report = lint_machine(machine, name="level_demo", config=config.name)
    rules = {f.rule_id for f in report.findings}
    assert "WB-LEVEL" in rules, report.render()
    assert "INV-LEVEL" in rules, report.render()


def test_hcc_configs_never_linted():
    """HCC is hardware-coherent: machine-level helper never sees it, and
    the CLI rejects it (covered in test_cli)."""
    assert config_named("intra", "HCC").hardware_coherent
    assert config_named("inter", "HCC").hardware_coherent
