"""CLI-level tests for ``repro lint``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_lint_clean_litmus_kernel_exits_zero(capsys):
    assert main(["lint", "mp_flag"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_canary_exits_nonzero(capsys):
    assert main(["lint", "missing_annotations"]) == 1
    out = capsys.readouterr().out
    assert "WB-FLAG" in out and "INV-FLAG" in out
    assert "docs/ANNOTATIONS.md#wb-flag" in out


def test_lint_fix_canary_verifies_and_exits_zero(capsys):
    assert main(["lint", "missing_annotations", "--fix"]) == 0
    out = capsys.readouterr().out
    assert "fix verified" in out


def test_lint_litmus_cross_validation_exits_zero():
    assert main(["lint", "--litmus"]) == 0


def test_lint_json_report_shape(capsys):
    assert main(["lint", "mp_barrier", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "mp_barrier"
    assert payload["summary"]["errors"] == 0
    assert payload["findings"] == []
    assert payload["machine"]["threads"] == 4


def test_lint_json_error_findings(capsys):
    assert main(["lint", "missing_wb_barrier", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (finding,) = payload["findings"]
    assert finding["rule"] == "WB-BAR"
    assert finding["severity"] == "error"


def test_lint_rejects_hcc():
    assert main(["lint", "mp_flag", "--config", "HCC"]) == 2


def test_lint_unknown_target():
    assert main(["lint", "no_such_kernel"]) == 2


def test_lint_requires_a_target():
    assert main(["lint"]) == 2


def test_lint_workload_clean(capsys):
    assert main(["lint", "volrend", "--scale", "0.5"]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_lint_dump_cfg(capsys):
    assert main(["lint", "mp_flag", "--dump-cfg"]) == 0
    out = capsys.readouterr().out
    assert "thread 0" in out and "segment" in out
