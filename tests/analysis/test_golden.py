"""Golden-file regression test for the JSON lint report.

The extraction scheduler and the checker are deterministic, so the full
JSON report for the canary kernel is stable byte-for-byte.  Any change to
the edge derivation, rule attribution, aggregation, or report schema shows
up here as a readable diff.

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/analysis/test_golden.py
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from tests.analysis.helpers import lint_litmus

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def check_golden(name: str, rendered: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden file {path} missing — run with REPRO_UPDATE_GOLDEN=1"
    )
    assert rendered + "\n" == path.read_text(), (
        f"{name} drifted from its golden copy; if the change is intended, "
        f"regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_canary_json_report_golden():
    report = lint_litmus("missing_annotations")
    rendered = json.dumps(report.to_dict(), indent=1, sort_keys=True)
    check_golden("lint_canary.json", rendered)


def test_broken_lock_handoff_text_report_golden():
    report = lint_litmus("lock_handoff_three_threads_broken")
    check_golden("lint_lock_handoff_broken.txt", report.render())
