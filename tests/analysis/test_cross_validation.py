"""Static/dynamic cross-validation: the two harnesses must agree.

The dynamic differential harness (``tests/coherence``) proves which litmus
kernels actually lose updates or read stale data on the simulated
incoherent hierarchy.  These tests pin the static analyzer to the same
verdicts:

* every kernel the dynamic harness flags (``determinate=False``) must be
  flagged statically, citing the documented rules — no static false
  negatives;
* every correctly annotated kernel and every shipped SPLASH/NAS workload
  must lint completely clean — no static false positives on real code.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_machine
from repro.core.config import INTER_ADDR, INTRA_BASE
from repro.core.machine import Machine
from repro.common.params import inter_block_machine, intra_block_machine
from repro.workloads import MODEL_ONE, MODEL_TWO
from repro.workloads.litmus import LITMUS

from tests.analysis.helpers import (
    NAS_SCALE,
    SPLASH_SCALE,
    lint_litmus,
)


@pytest.mark.parametrize("name", sorted(LITMUS))
def test_litmus_matches_expectation(name):
    """Each kernel's lint verdict equals its documented expectation."""
    kernel = LITMUS[name]
    report = lint_litmus(name)
    got = {f.rule_id for f in report.findings}
    assert set(kernel.expect_rules) <= got, (
        f"{name}: expected rules {sorted(kernel.expect_rules)} "
        f"not all reported (got {sorted(got)})"
    )
    if kernel.lint_clean:
        assert report.clean, (
            f"{name} should lint clean but got {sorted(got)}"
        )


@pytest.mark.parametrize(
    "name", sorted(k.name for k in LITMUS.values() if not k.determinate)
)
def test_dynamically_broken_kernels_fail_lint(name):
    """No static false negatives: dynamic divergence implies lint errors.

    ``test_litmus_broken_diverges`` (tests/coherence) proves these kernels
    really diverge from hardware coherence when run; here the analyzer
    must catch every one of them without running the cache simulator.
    """
    report = lint_litmus(name)
    assert report.errors > 0, f"{name} diverges dynamically but lints clean"


def test_canary_fails_lint():
    """The canary kernel of the differential suite must also fail lint."""
    report = lint_litmus("missing_annotations")
    got = {f.rule_id for f in report.findings}
    assert {"WB-FLAG", "INV-FLAG"} <= got


@pytest.mark.parametrize("app", sorted(SPLASH_SCALE))
def test_splash_workloads_lint_clean(app):
    machine = Machine(intra_block_machine(4), INTRA_BASE, num_threads=4)
    MODEL_ONE[app](scale=SPLASH_SCALE[app]).prepare(machine)
    report = lint_machine(machine, name=app, config=INTRA_BASE.name)
    assert report.clean, report.render()


@pytest.mark.parametrize("app", sorted(NAS_SCALE))
def test_nas_workloads_lint_clean(app):
    machine = Machine(inter_block_machine(2, 2), INTER_ADDR, num_threads=4)
    MODEL_TWO[app](scale=NAS_SCALE[app]).prepare(machine)
    report = lint_machine(machine, name=app, config=INTER_ADDR.name)
    assert report.clean, report.render()
