"""Shared helpers for the static-analyzer test suite."""

from __future__ import annotations

from repro.analysis import lint_machine
from repro.core.config import INTER_CONFIGS, INTRA_CONFIGS
from repro.core.machine import Machine
from repro.workloads.litmus import LITMUS, machine_params, spawn_litmus

#: Workload scales matching tests/workloads (keeps each lint under ~1s).
SPLASH_SCALE = {
    "fft": 0.6, "lu_cont": 0.5, "lu_noncont": 0.5, "cholesky": 0.8,
    "barnes": 0.5, "raytrace": 0.5, "volrend": 0.5, "ocean_cont": 0.6,
    "ocean_noncont": 0.6, "water_nsq": 0.4, "water_sp": 0.4,
}
NAS_SCALE = {"jacobi": 0.15, "ep": 0.25, "is": 0.15, "cg": 0.35}


def config_named(model: str, name: str):
    configs = INTRA_CONFIGS if model == "intra" else INTER_CONFIGS
    return next(c for c in configs if c.name == name)


def default_config(model: str):
    """The default lint configuration per machine model."""
    return config_named(model, "Base" if model == "intra" else "Addr")


def litmus_machine(name: str, config=None) -> Machine:
    """A fresh machine with litmus kernel *name* spawned, not yet run."""
    kernel = LITMUS[name]
    if config is None:
        config = default_config(kernel.model)
    machine = Machine(
        machine_params(kernel), config, num_threads=kernel.threads
    )
    spawn_litmus(kernel, machine)
    return machine


def lint_litmus(name: str, config=None):
    kernel = LITMUS[name]
    if config is None:
        config = default_config(kernel.model)
    machine = litmus_machine(name, config)
    return lint_machine(machine, name=name, config=config.name)


def run_litmus(name: str, config, plan=None):
    """Run kernel *name* under *config*, optionally with a patch plan.

    Returns ``(obs, mem)``.
    """
    from repro.analysis.fix import apply_fixes

    kernel = LITMUS[name]
    machine = Machine(
        machine_params(kernel), config, num_threads=kernel.threads
    )
    arrs, obs = spawn_litmus(kernel, machine)
    if plan is not None:
        apply_fixes(machine, plan)
    machine.run()
    mem = {n: machine.read_array(a) for n, a in arrs.items()}
    return obs, mem
