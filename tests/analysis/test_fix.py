"""End-to-end verification of ``repro lint --fix``.

The strongest possible check: for every deliberately broken litmus kernel,
plan the missing annotations statically, splice them into the unmodified
program, run the result on the real cache simulator, and require
observations + final memory to be bit-identical to the hardware-coherent
(HCC) reference — under every incoherent configuration of the kernel's
machine model.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_machine
from repro.analysis.fix import (
    MAX_RANGES_PER_HINT,
    apply_fixes,
    coalesce,
    plan_fixes,
    render_plan,
)
from repro.core.config import INTER_CONFIGS, INTRA_CONFIGS
from repro.workloads.litmus import LITMUS

from tests.analysis.helpers import litmus_machine, run_litmus

_BROKEN = sorted(k.name for k in LITMUS.values() if not k.determinate)


def _model_configs(kernel):
    return INTRA_CONFIGS if kernel.model == "intra" else INTER_CONFIGS


@pytest.mark.parametrize("name", _BROKEN)
def test_fixed_kernel_matches_hcc_everywhere(name):
    """Patched broken kernels become bit-identical to hardware coherence.

    The plan is config-specific (annotation expansion differs per
    config), so each configuration gets its own extract/plan/patch cycle.
    """
    kernel = LITMUS[name]
    configs = _model_configs(kernel)
    hcc = configs[0]
    assert hcc.name == "HCC"
    reference = run_litmus(name, hcc)
    for config in configs[1:]:
        machine = litmus_machine(name, config)
        report = lint_machine(machine, name=name, config=config.name)
        plan = plan_fixes(report, machine)
        assert plan, f"{name}: no fixes planned under {config.name}"
        outcome = run_litmus(name, config, plan=plan)
        assert outcome == reference, (
            f"{name} under {config.name} still diverges after --fix: "
            f"{outcome} != {reference}\n{render_plan(plan)}"
        )


@pytest.mark.parametrize("name", _BROKEN)
def test_fixed_kernel_relints_clean(name):
    """After patching, the analyzer finds no more errors."""
    kernel = LITMUS[name]
    config = _model_configs(kernel)[1]
    machine = litmus_machine(name, config)
    plan = plan_fixes(
        lint_machine(machine, name=name, config=config.name), machine
    )
    patched = litmus_machine(name, config)
    apply_fixes(patched, plan)
    report = lint_machine(patched, name=name, config=config.name)
    assert report.errors == 0, report.render()


def test_clean_workload_needs_no_fixes():
    """The fig9 tiny cell (volrend, 4 threads, scale 0.5) plans nothing.

    A clean report must produce an empty plan, and applying the empty
    plan must leave the run untouched: the workload still verifies.
    """
    from repro.common.params import intra_block_machine
    from repro.core.config import INTRA_CONFIGS
    from repro.core.machine import Machine
    from repro.workloads import MODEL_ONE

    base = next(c for c in INTRA_CONFIGS if c.name == "Base")
    machine = Machine(intra_block_machine(4), base, num_threads=4)
    workload = MODEL_ONE["volrend"](scale=0.5)
    workload.prepare(machine)
    report = lint_machine(machine, name="volrend", config=base.name)
    assert report.clean, report.render()
    plan = plan_fixes(report, machine)
    assert plan == {}
    fresh = Machine(intra_block_machine(4), base, num_threads=4)
    workload.prepare(fresh)
    assert apply_fixes(fresh, plan) == 0
    fresh.run()
    workload.verify(fresh)


def test_coalesce_merges_adjacent_words():
    assert coalesce({8, 4, 0}) == [(0, 12)]
    assert coalesce({0, 8}) == [(0, 4), (8, 4)]
    assert coalesce(set()) == []


def test_coalesce_collapses_excessive_ranges():
    """Too many disjoint runs collapse into one covering range."""
    words = {i * 8 for i in range(MAX_RANGES_PER_HINT + 4)}
    runs = coalesce(words)
    assert runs == [(0, max(words) + 4)]


def test_render_plan_empty():
    assert render_plan({}) == "no fixes to apply"
