"""Unit tests for the happens-before pass (extract -> clocks -> edges)."""

from __future__ import annotations

from repro.analysis import analyze_hb, extract
from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BASE
from repro.core.machine import Machine
from repro.isa import ops as isa

from tests.analysis.helpers import litmus_machine


def _hb_for(name: str):
    return analyze_hb(extract(litmus_machine(name)))


def _machine(nthreads=2):
    return Machine(
        intra_block_machine(4), INTRA_BASE, num_threads=nthreads
    )


def test_flag_edge_is_ordered():
    hb = _hb_for("mp_flag")
    rw = [e for e in hb.edges if e.kind == "rw"]
    assert len(rw) == 1
    assert rw[0].ordered
    assert rw[0].write.tid == 0 and rw[0].sink.tid == 1


def test_barrier_round_joins_all_members_atomically():
    """Every post-barrier read is ordered after the pre-barrier write.

    The barrier round is recorded member-by-member in the stream; a naive
    sequential join would leave later-arriving members unordered with the
    first member's next operations.
    """
    hb = _hb_for("mp_barrier")
    assert hb.edges, "expected cross-thread edges"
    assert all(e.ordered for e in hb.edges)


def test_lock_chain_orders_counter_updates():
    hb = _hb_for("lock_counter")
    assert all(e.ordered for e in hb.edges)
    assert {e.kind for e in hb.edges} == {"rw", "ww"}


def test_unsynchronized_edge_is_unordered():
    hb = _hb_for("missing_annotations")
    assert any(not e.ordered for e in hb.edges)


def test_silent_same_value_writes_create_no_ww_edge():
    """Concurrent writes of the same value are not a lost-update hazard."""
    machine = _machine()
    arr = machine.array("a", 2)

    def writer(ctx):
        yield isa.Write(arr.addr(0), 7)   # same value as the peer
        yield isa.Write(arr.addr(1), ctx.tid)  # different values

    machine.spawn(writer)
    machine.spawn(writer)
    hb = analyze_hb(extract(machine))
    ww_words = {e.word for e in hb.edges if e.kind == "ww"}
    assert arr.addr(0) not in ww_words
    assert arr.addr(1) in ww_words


def test_shared_words_tracks_multi_writer_words():
    machine = _machine()
    arr = machine.array("a", 2)

    def writer(ctx):
        yield isa.Write(arr.addr(0), ctx.tid)  # both threads write word 0
        yield isa.Write(arr.addr(1 if ctx.tid else 0), 5)

    machine.spawn(writer)
    machine.spawn(writer)
    hb = analyze_hb(extract(machine))
    assert arr.addr(0) in hb.shared_words
    assert arr.addr(1) not in hb.shared_words  # single writer only


def test_inv_events_snapshot_vector_clocks():
    hb = _hb_for("mp_barrier")
    for per_thread in hb.inv_events:
        for ev in per_thread:
            assert ev.vc is not None
    for per_thread in hb.wb_events:
        for ev in per_thread:
            assert ev.vc is None
