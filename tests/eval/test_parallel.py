"""Tests for the parallel sweep executor."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.eval.cache import ResultCache
from repro.eval.parallel import (
    SweepCell,
    SweepExecutor,
    _run_cell,
    sweep_matrix,
)
from repro.eval.runner import sweep_inter, sweep_intra

SMALL = dict(num_threads=4, scale=0.5, machine_params=intra_block_machine(4))


def small_cells(apps=("volrend", "raytrace"), configs=(INTRA_HCC, INTRA_BMI)):
    return [SweepCell.make("intra", a, c, **SMALL) for a in apps for c in configs]


def flatten(results):
    return {
        (app, cfg): (r.exec_time, tuple(sorted(r.breakdown().items())))
        for app, per_cfg in results.items()
        for cfg, r in per_cfg.items()
    }


class TestSweepCell:
    def test_make_canonicalizes_kwargs(self):
        a = SweepCell.make("intra", "fft", INTRA_HCC, scale=0.5, num_threads=4)
        b = SweepCell.make("intra", "fft", INTRA_HCC, num_threads=4, scale=0.5)
        assert a == b

    def test_run_cell_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            _run_cell(SweepCell.make("sideways", "fft", INTRA_HCC))


class TestSweepExecutor:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError):
            SweepExecutor(jobs=0)
        with pytest.raises(ConfigError):
            SweepExecutor(retries=-1)

    def test_default_jobs_is_cpu_count(self):
        import os

        assert SweepExecutor().jobs == (os.cpu_count() or 1)

    def test_serial_preserves_cell_order(self):
        ex = SweepExecutor(jobs=1)
        cells = small_cells()
        results = ex.run_cells(cells)
        assert [(r.app, r.config) for r in results] == [
            (c.app, c.config.name) for c in cells
        ]
        assert ex.stats.cells == 4 and ex.stats.simulated == 4

    def test_parallel_matches_serial_bitwise(self):
        serial = sweep_intra(
            ["volrend", "raytrace"], [INTRA_HCC, INTRA_BMI], jobs=1, **SMALL
        )
        ex = SweepExecutor(jobs=2)
        parallel = sweep_intra(
            ["volrend", "raytrace"], [INTRA_HCC, INTRA_BMI], executor=ex, **SMALL
        )
        assert flatten(serial) == flatten(parallel)

    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        from repro.eval import parallel as mod

        def broken_pool(*a, **k):
            raise OSError("no semaphores here")

        monkeypatch.setattr(mod.futures, "ProcessPoolExecutor", broken_pool)
        ex = SweepExecutor(jobs=2)
        results = ex.run_cells(small_cells())
        assert len(results) == 4 and all(r.exec_time > 0 for r in results)
        assert ex.stats.pool_fallbacks == 1

    def test_cache_hits_skip_simulation(self, tmp_path):
        cells = small_cells()
        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        first = warm.run_cells(cells)
        assert warm.stats.cache_misses == 4 and warm.stats.simulated == 4

        hot = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        second = hot.run_cells(cells)
        assert hot.stats.cache_hits == 4 and hot.stats.simulated == 0
        for a, b in zip(first, second):
            assert a.exec_time == b.exec_time
            assert a.stats.summary() == b.stats.summary()

    def test_stats_summary_mentions_cache(self, tmp_path):
        ex = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        ex.run_cells(small_cells(apps=("volrend",)))
        text = ex.stats.summary()
        assert "2 cell(s)" in text and "miss(es)" in text


class TestSweepWrappers:
    def test_sweep_matrix_shape(self):
        out = sweep_matrix(
            "intra", ["volrend"], [INTRA_HCC, INTRA_BMI],
            SweepExecutor(jobs=1), **SMALL,
        )
        assert set(out) == {"volrend"}
        assert set(out["volrend"]) == {"HCC", "B+M+I"}

    def test_sweep_inter_wrapper_parallel(self):
        from repro.core.config import INTER_ADDR_L, INTER_HCC

        kw = dict(num_blocks=2, cores_per_block=2, scale=0.25)
        serial = sweep_inter(["ep"], [INTER_HCC, INTER_ADDR_L], jobs=1, **kw)
        parallel = sweep_inter(["ep"], [INTER_HCC, INTER_ADDR_L], jobs=2, **kw)
        assert flatten(serial) == flatten(parallel)
