"""Tests for the benchmark harness helpers (benchmarks/common.py)."""

import importlib.util
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def load_common():
    spec = importlib.util.spec_from_file_location(
        "bench_common_under_test", BENCH_DIR / "common.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    spec.loader.exec_module(mod)
    return mod


def test_save_result_creates_nested_results_dir(tmp_path, monkeypatch):
    """Regression: RESULTS_DIR must be created with parents=True."""
    common = load_common()
    nested = tmp_path / "deeply" / "nested" / "results"
    monkeypatch.setattr(common, "RESULTS_DIR", nested)
    common.save_result("probe", "row1\nrow2", elapsed=1.25)
    text = (nested / "probe.txt").read_text()
    assert "row1" in text


def test_save_result_records_wall_clock(tmp_path, monkeypatch):
    common = load_common()
    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    common.save_result("timed", "table", elapsed=2.5)
    text = (tmp_path / "timed.txt").read_text()
    assert "table" in text
    assert "[wall-clock: 2.500 s]" in text


def test_save_result_picks_up_last_run_once_elapsed(tmp_path, monkeypatch):
    common = load_common()
    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)

    class FakeBenchmark:
        @staticmethod
        def pedantic(fn, rounds, iterations, warmup_rounds):
            return fn()

    out = common.run_once(FakeBenchmark, lambda: "rendered")
    assert out == "rendered"
    assert common.LAST_RUN_SECONDS is not None
    common.save_result("auto", out)
    assert "[wall-clock:" in (tmp_path / "auto.txt").read_text()


def test_save_result_without_elapsed_omits_footer(tmp_path, monkeypatch):
    common = load_common()
    monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
    assert common.LAST_RUN_SECONDS is None  # fresh module load
    common.save_result("bare", "table")
    assert "[wall-clock" not in (tmp_path / "bare.txt").read_text()
