"""Tests for the evaluation harness (runner, storage model, reports)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import inter_block_machine, intra_block_machine
from repro.core.config import INTRA_BMI, INTRA_HCC, INTER_ADDR_L, INTER_HCC
from repro.eval.report import (
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_storage,
    render_table1,
    render_table2,
    render_table3,
)
from repro.eval.runner import (
    normalized_exec,
    run_inter,
    run_intra,
    stall_fractions,
    sweep_intra,
)
from repro.eval.storage import storage_report


class TestStorageModel:
    def test_paper_number_reproduced(self):
        """Section VII-A: the incoherent hierarchy saves about 102 KB."""
        report = storage_report()
        assert 95 <= report.saved_kbytes <= 110

    def test_savings_scale_with_machine(self):
        small = storage_report(inter_block_machine(2, 2))
        big = storage_report(inter_block_machine(4, 8))
        assert big.saved_bits > small.saved_bits

    def test_intra_machine_has_no_l3_directory(self):
        report = storage_report(intra_block_machine(16))
        assert report.coherent_bits > 0
        assert report.saved_bits != 0


class TestRunner:
    def test_run_intra_returns_verified_result(self):
        r = run_intra("volrend", INTRA_BMI, num_threads=4, scale=0.5,
                      machine_params=intra_block_machine(4))
        assert r.app == "volrend" and r.config == "B+M+I"
        assert r.exec_time > 0

    def test_run_inter(self):
        r = run_inter("ep", INTER_ADDR_L, num_blocks=2, cores_per_block=2,
                      scale=0.25)
        assert r.exec_time > 0

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigError):
            run_intra("nope", INTRA_HCC)
        with pytest.raises(ConfigError):
            run_inter("nope", INTER_HCC)

    def test_normalized_exec(self):
        results = sweep_intra(
            ["volrend"],
            [INTRA_HCC, INTRA_BMI],
            num_threads=4,
            scale=0.5,
            machine_params=intra_block_machine(4),
        )
        norm = normalized_exec(results["volrend"])
        assert norm["HCC"] == 1.0
        assert norm["B+M+I"] > 0

    def test_stall_fractions_sum_to_one(self):
        r = run_intra("volrend", INTRA_BMI, num_threads=4, scale=0.5,
                      machine_params=intra_block_machine(4))
        fractions = stall_fractions(r)
        assert abs(sum(fractions.values()) - 1.0) < 1e-6


class TestReports:
    @pytest.fixture(scope="class")
    def small_results(self):
        return sweep_intra(
            ["volrend", "raytrace"],
            [INTRA_HCC, INTRA_BMI],
            num_threads=4,
            scale=0.5,
            machine_params=intra_block_machine(4),
        )

    def test_table_renderers_nonempty(self):
        assert "cholesky" in render_table1()
        assert "B+M+I" in render_table2()
        t3 = render_table3(inter_block_machine())
        assert "32KB" in t3 and "150-cycle" in t3

    def test_storage_render_mentions_paper(self):
        out = render_storage(storage_report())
        assert "102" in out

    def test_fig9_render(self, small_results):
        out = render_fig9(small_results)
        assert "volrend" in out and "MEAN" in out
        assert "wb_stall" in out

    def test_fig10_render(self, small_results):
        out = render_fig10(small_results)
        assert "linefill" in out

    def test_fig11_and_12_render(self):
        from repro.core.config import INTER_CONFIGS
        from repro.eval.runner import sweep_inter

        results = sweep_inter(
            ["ep"], list(INTER_CONFIGS), num_blocks=2, cores_per_block=2,
            scale=0.25,
        )
        assert "ep" in render_fig11(results)
        out12 = render_fig12(results)
        assert "ep" in out12 and "MEAN" in out12
