"""Tests for the persistent sweep-result cache."""

import json

from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.eval.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cell_key,
    default_cache_dir,
    describe_cell,
    payload_digest,
)
from repro.eval.parallel import SweepCell, _run_cell

SMALL = dict(num_threads=4, scale=0.5, machine_params=intra_block_machine(4))


def cell(app="volrend", config=INTRA_BMI, **overrides):
    kw = {**SMALL, **overrides}
    return SweepCell.make("intra", app, config, **kw)


class TestCacheKey:
    def test_key_is_stable(self):
        assert cell_key(cell()) == cell_key(cell())

    def test_key_ignores_kwarg_order(self):
        a = SweepCell.make("intra", "volrend", INTRA_BMI, scale=0.5, num_threads=4)
        b = SweepCell.make("intra", "volrend", INTRA_BMI, num_threads=4, scale=0.5)
        assert cell_key(a) == cell_key(b)

    def test_key_varies_with_every_identity_field(self):
        base = cell_key(cell())
        assert cell_key(cell(app="raytrace")) != base
        assert cell_key(cell(config=INTRA_HCC)) != base
        assert cell_key(cell(scale=0.25)) != base
        assert cell_key(cell(verify=False)) != base
        assert (
            cell_key(cell(machine_params=intra_block_machine(4, overlap=0.9)))
            != base
        )

    def test_default_machine_hashes_like_explicit(self):
        implicit = SweepCell.make("intra", "volrend", INTRA_BMI, num_threads=4)
        explicit = SweepCell.make(
            "intra", "volrend", INTRA_BMI, num_threads=4,
            machine_params=intra_block_machine(4),
        )
        assert cell_key(implicit) == cell_key(explicit)

    def test_describe_cell_names_the_invalidating_fields(self):
        d = describe_cell(cell())
        for field in ("schema", "version", "kind", "app", "config", "machine",
                      "geometry", "scale", "verify", "memory_model"):
            assert field in d

    def test_key_varies_with_memory_model(self):
        assert cell_key(cell(model="rc")) != cell_key(cell())
        assert cell_key(cell(model="rc")) != cell_key(cell(model="sisd"))

    def test_default_model_hashes_like_explicit_base(self):
        # model=None resolves to the base model, so both spellings must
        # address the same entry.
        assert cell_key(cell(model="base")) == cell_key(cell())

    def test_hcc_config_coerces_model_key(self):
        # Hardware-coherent configurations always run MESI: the requested
        # model is irrelevant to the result, so it must not split the key.
        assert cell_key(cell(config=INTRA_HCC, model="rc")) == cell_key(
            cell(config=INTRA_HCC)
        )
        assert describe_cell(cell(config=INTRA_HCC))["memory_model"] == "hcc"

    def test_env_model_resolves_into_key(self, monkeypatch):
        from repro.models import MODEL_ENV_VAR

        monkeypatch.setenv(MODEL_ENV_VAR, "rc")
        assert cell_key(cell()) == cell_key(cell(model="rc"))
        monkeypatch.delenv(MODEL_ENV_VAR)
        assert cell_key(cell()) == cell_key(cell(model="base"))


class TestResultCache:
    def test_miss_then_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        assert cache.get(c) is None
        result = _run_cell(c)
        path = cache.put(c, result)
        assert path.is_file()
        back = cache.get(c)
        assert back is not None
        assert back.exec_time == result.exec_time
        assert back.breakdown() == result.breakdown()
        assert back.stats.summary() == result.stats.summary()
        assert cache.hits == 1 and cache.misses == 1

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _run_cell(cell())
        cache.put(cell(), result)
        cache.put(cell(app="raytrace"), _run_cell(cell(app="raytrace")))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.get(cell()) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        path = cache.put(c, _run_cell(c))
        path.write_text("{not json")
        assert cache.get(c) is None

    def test_entry_payload_is_inspectable(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        path = cache.put(c, _run_cell(c))
        payload = json.loads(path.read_text())
        assert payload["cell"]["app"] == "volrend"
        assert payload["cell"]["geometry"] == {"num_threads": 4}
        assert payload["key"] == cell_key(c)

    def test_env_var_overrides_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ResultCache().root == tmp_path / "elsewhere"

    def test_default_root_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro-sweeps"


class TestIntegrity:
    """Checksummed entries, quarantine, and self-healing (ISSUE 9)."""

    def test_entries_carry_a_verifiable_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        path = cache.put(c, _run_cell(c))
        doc = json.loads(path.read_text())
        assert doc["sha256"] == payload_digest(doc)
        assert doc["cell"]["schema"] == CACHE_SCHEMA

    def test_truncated_entry_is_a_miss_not_an_exception(self, tmp_path):
        """Regression: a crash mid-write must read back as a miss."""
        cache = ResultCache(tmp_path)
        c = cell()
        path = cache.put(c, _run_cell(c))
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])  # torn file
        assert cache.get(c) is None
        assert cache.corrupt_detected == 1

    def test_bitflip_is_detected_and_never_served(self, tmp_path):
        """A parseable-but-tampered entry must fail the checksum."""
        cache = ResultCache(tmp_path)
        c = cell()
        path = cache.put(c, _run_cell(c))
        doc = json.loads(path.read_text())
        doc["result"]["stats"]["exec_time"] += 1
        path.write_text(json.dumps(doc))  # checksum now stale
        assert cache.get(c) is None
        assert cache.corrupt_detected == 1

    def test_corrupt_entry_is_quarantined_then_healed(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        result = _run_cell(c)
        path = cache.put(c, result)
        path.write_text("garbage")
        assert cache.get(c) is None  # detected -> quarantined -> miss
        assert not path.exists()
        q = list(cache.quarantine_dir.glob("*.corrupt"))
        assert len(q) == 1 and q[0].read_text() == "garbage"
        # self-heal: recompute + put rewrites the same key
        cache.put(c, result)
        back = cache.get(c)
        assert back is not None and back.exec_time == result.exec_time
        assert cache.counters()["quarantined"] == 1

    def test_quarantined_files_are_not_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        path = cache.put(c, _run_cell(c))
        path.write_text("junk")
        cache.get(c)
        assert len(cache) == 0

    def test_verify_classifies_ok_stale_and_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        cache.put(c, _run_cell(c))
        other = cache.put(cell(app="raytrace"), _run_cell(cell(app="raytrace")))
        other.write_text(other.read_text()[:40])  # corrupt one
        # forge a healthy entry from an older cache schema
        stale_doc = json.loads(
            cache.put(cell(scale=0.25), _run_cell(cell(scale=0.25))).read_text()
        )
        stale_doc["cell"]["schema"] = CACHE_SCHEMA - 1
        stale_doc["sha256"] = payload_digest(stale_doc)
        stale_path = cache._path(stale_doc["key"])
        stale_path.write_text(json.dumps(stale_doc))
        report = cache.verify()
        assert report["checked"] == 3
        assert report["ok"] == 1
        assert report["stale"] == 1
        assert report["corrupt"] == 1
        assert str(other) in report["corrupt_paths"]

    def test_gc_reclaims_stale_and_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        c = cell()
        cache.put(c, _run_cell(c))
        bad = cache.put(cell(app="raytrace"), _run_cell(cell(app="raytrace")))
        bad.write_text("xx")
        report = cache.gc()
        assert report["corrupt_quarantined"] == 1
        assert report["quarantine_removed"] >= 1
        assert report["kept"] == 1
        assert cache.get(c) is not None

    def test_stats_shape(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cell(), _run_cell(cell()))
        doc = cache.stats()
        assert doc["entries"] == 1 and doc["bytes"] > 0
        assert doc["by_schema"] == {str(CACHE_SCHEMA): 1}
        assert doc["quarantined_files"] == 0
