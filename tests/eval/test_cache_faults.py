"""Cache keys must distinguish fault plans (and litmus cells)."""

from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.eval.cache import CACHE_SCHEMA, cell_key, describe_cell
from repro.eval.parallel import SweepCell
from repro.faults.model import FaultKind, FaultPlan, FaultSpec


def _cell(**kw):
    return SweepCell.make("intra", "fft", INTRA_BMI, scale=0.5, **kw)


def _plan(seed=1, rate=0.5):
    return FaultPlan(
        name="p", seed=seed,
        specs=(FaultSpec(kind=FaultKind.NOC_JITTER, rate=rate),),
    )


def test_schema_bumped_for_fault_plans():
    # 2 added fault plans to the key; 3 added the payload checksum.
    assert CACHE_SCHEMA >= 2


def test_fault_plan_changes_the_key():
    assert cell_key(_cell(faults=_plan())) != cell_key(_cell())


def test_different_plans_get_different_keys():
    a = cell_key(_cell(faults=_plan(seed=1)))
    b = cell_key(_cell(faults=_plan(seed=2)))
    c = cell_key(_cell(faults=_plan(rate=0.25)))
    assert len({a, b, c}) == 3


def test_equal_plans_share_a_key():
    assert cell_key(_cell(faults=_plan())) == cell_key(_cell(faults=_plan()))


def test_describe_cell_records_the_plan_digest():
    plan = _plan()
    desc = describe_cell(_cell(faults=plan))
    assert desc["fault_plan"] == plan.digest()
    assert "faults" not in desc.get("kwargs", {})
    assert describe_cell(_cell())["fault_plan"] is None


def test_litmus_cells_are_cacheable():
    cell = SweepCell.make("litmus", "mp_flag", INTRA_BMI, memory_digest=True)
    desc = describe_cell(cell)
    assert desc["geometry"] == {"model": "intra", "num_threads": 2}
    assert cell_key(cell) != cell_key(
        SweepCell.make("litmus", "mp_flag", INTRA_HCC, memory_digest=True)
    )
    assert cell_key(cell) != cell_key(
        SweepCell.make("litmus", "mp_barrier", INTRA_BMI, memory_digest=True)
    )
