"""RunResult / MachineStats serialization: pickle and dict round trips.

Both the process-pool sweep executor and the disk cache depend on these
round trips preserving every statistic bit-for-bit.
"""

import json
import pickle

import pytest

from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BMI
from repro.eval.runner import RunResult, run_intra
from repro.sim.stats import CoreStats, MachineStats, StallCat, TrafficCat


@pytest.fixture(scope="module")
def result():
    return run_intra(
        "volrend", INTRA_BMI, num_threads=4, scale=0.5,
        machine_params=intra_block_machine(4),
    )


def assert_stats_equal(a: MachineStats, b: MachineStats):
    assert a.summary() == b.summary()
    assert a.breakdown() == b.breakdown()
    assert a.traffic == b.traffic
    assert len(a.per_core) == len(b.per_core)
    for ca, cb in zip(a.per_core, b.per_core):
        assert ca == cb


class TestPickle:
    def test_runresult_pickle_roundtrip(self, result):
        back = pickle.loads(pickle.dumps(result))
        assert back.app == result.app and back.config == result.config
        assert back.exec_time == result.exec_time
        assert_stats_equal(back.stats, result.stats)

    def test_pickled_enum_keys_are_same_members(self, result):
        back = pickle.loads(pickle.dumps(result))
        assert set(back.stats.traffic) == set(TrafficCat)
        assert set(back.stats.per_core[0].stalls) == set(StallCat)


class TestDictRoundtrip:
    def test_runresult_dict_roundtrip(self, result):
        d = result.to_dict()
        json.dumps(d)  # must be JSON-safe as-is
        back = RunResult.from_dict(json.loads(json.dumps(d)))
        assert back.app == result.app and back.config == result.config
        assert back.exec_time == result.exec_time
        assert_stats_equal(back.stats, result.stats)

    def test_corestats_roundtrip_preserves_enum_keys(self):
        cs = CoreStats()
        cs.add_stall(StallCat.LOCK, 7)
        cs.loads = 3
        cs.finish_time = 99
        back = CoreStats.from_dict(json.loads(json.dumps(cs.to_dict())))
        assert back == cs
        assert back.stalls[StallCat.LOCK] == 7

    def test_machinestats_roundtrip_scalars_and_traffic(self):
        ms = MachineStats.for_cores(2)
        ms.exec_time = 1234
        ms.global_wb_lines = 5
        ms.frozen = True
        ms.traffic[TrafficCat.LINEFILL] = 17
        back = MachineStats.from_dict(json.loads(json.dumps(ms.to_dict())))
        assert back.exec_time == 1234
        assert back.global_wb_lines == 5
        assert back.frozen is True
        assert back.traffic[TrafficCat.LINEFILL] == 17
        assert_stats_equal(back, ms)
