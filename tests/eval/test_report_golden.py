"""Golden-file regression tests for the figure/table renderers.

The simulator is deterministic, so the rendered fig9/fig12 tables for a
tiny fixed matrix are stable byte-for-byte.  These tests pin that output:
any change to the simulator's timing model, the sweep plumbing, or the
renderers that shifts a single digit shows up as a readable text diff.

To regenerate after an *intentional* change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/eval/test_report_golden.py
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.common.params import inter_block_machine, intra_block_machine
from repro.core.config import INTER_CONFIGS, INTRA_CONFIGS
from repro.eval import report as rpt
from repro.eval.runner import run_inter, run_intra

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def check_golden(name: str, rendered: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden file {path} missing — run with REPRO_UPDATE_GOLDEN=1"
    )
    assert rendered + "\n" == path.read_text(), (
        f"{name} drifted from its golden copy; if the change is intended, "
        f"regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_fig9_tiny_golden():
    results = {
        "volrend": {
            cfg.name: run_intra(
                "volrend",
                cfg,
                num_threads=4,
                scale=0.5,
                machine_params=intra_block_machine(4),
            )
            for cfg in INTRA_CONFIGS
        }
    }
    check_golden("fig9_tiny.txt", rpt.render_fig9(results))


def test_fig12_tiny_golden():
    results = {
        "ep": {
            cfg.name: run_inter(
                "ep",
                cfg,
                num_blocks=2,
                cores_per_block=2,
                scale=0.25,
            )
            for cfg in INTER_CONFIGS
        }
    }
    check_golden("fig12_tiny.txt", rpt.render_fig12(results))
