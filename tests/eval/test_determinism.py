"""Cross-mode determinism: in-process, subprocess worker, and cache rehydration.

A seeded (app, config) cell must yield the identical ``exec_time`` and stall
breakdown no matter how it was executed: twice in this process, once inside
a process-pool worker, and once rehydrated from the persistent cache.  This
is what licenses the parallel executor and the cache to substitute for a
serial run.
"""

import pytest

from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BMI
from repro.eval.cache import ResultCache
from repro.eval.parallel import SweepCell, SweepExecutor, _run_cell

CELL_KW = dict(num_threads=4, scale=0.5, machine_params=intra_block_machine(4))


def fingerprint(result):
    """Everything Figure 9 plots for one cell, plus the raw counters."""
    return (
        result.app,
        result.config,
        result.exec_time,
        tuple(sorted(result.breakdown().items())),
        tuple(sorted(result.stats.summary().items())),
        tuple(
            tuple(sorted((c.value, n) for c, n in core.stalls.items()))
            for core in result.stats.per_core
        ),
    )


@pytest.fixture(scope="module")
def cell():
    return SweepCell.make("intra", "volrend", INTRA_BMI, **CELL_KW)


@pytest.fixture(scope="module")
def reference(cell):
    return _run_cell(cell)


def test_repeated_in_process_runs_identical(cell, reference):
    again = _run_cell(cell)
    assert fingerprint(again) == fingerprint(reference)


def test_subprocess_worker_identical(cell, reference):
    # Two distinct cells force SweepExecutor into its process-pool path.
    sibling = SweepCell.make("intra", "raytrace", INTRA_BMI, **CELL_KW)
    ex = SweepExecutor(jobs=2)
    pooled, _ = ex.run_cells([cell, sibling])
    assert ex.stats.simulated == 2
    assert fingerprint(pooled) == fingerprint(reference)


def test_cache_rehydration_identical(cell, reference, tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(cell, reference)
    ex = SweepExecutor(jobs=1, cache=cache)
    (rehydrated,) = ex.run_cells([cell])
    assert ex.stats.cache_hits == 1 and ex.stats.simulated == 0
    assert fingerprint(rehydrated) == fingerprint(reference)
