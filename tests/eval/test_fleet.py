"""Unit tests for the auto-checked scenario fleet (repro.eval.fleet)."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_HCC
from repro.eval.fleet import run_default_fleet, run_fleet
from repro.eval.parallel import SweepExecutor
from repro.workloads.gen import ScenarioSpec, sample_specs


def _specs(n=2, seed=123):
    return sample_specs(n, seed=seed)


def test_fleet_verdict_is_clean_and_complete():
    specs = _specs(3)
    verdict = run_fleet(
        specs,
        configs=(INTRA_BASE, INTRA_BMI),
        engines=("ref", "fast"),
        executor=SweepExecutor(jobs=1),
    )
    assert verdict["clean"] is True
    assert verdict["scenarios"] == 3
    assert verdict["cells"] == 3 * (1 + 2 * 2)
    assert verdict["lint_checks"] == 3 * 2
    assert verdict["oracle_divergences"] == 0
    assert verdict["engine_mismatches"] == 0
    assert verdict["lint_violations"] == 0
    assert sum(verdict["patterns"].values()) == 3
    assert len(verdict["details"]) == 3
    for entry, spec in zip(verdict["details"], specs):
        assert entry["scenario"] == spec.name
        assert entry["oracle_ok"] and entry["engine_ok"] and entry["lint_ok"]
        assert len(entry["cells"]) == 4
        for cell in entry["cells"].values():
            assert cell["digest"] == entry["digest"]


def test_fleet_verdict_is_json_serializable():
    verdict = run_fleet(
        _specs(1), configs=(INTRA_BMI,), executor=SweepExecutor(jobs=1)
    )
    again = json.loads(json.dumps(verdict, sort_keys=True))
    assert again["clean"] is True


def test_fleet_lint_can_be_skipped():
    verdict = run_fleet(
        _specs(1), configs=(INTRA_BMI,), executor=SweepExecutor(jobs=1),
        lint=False,
    )
    assert verdict["lint_checks"] == 0
    assert verdict["lint_violations"] == 0
    assert verdict["clean"] is True


def test_fleet_rejects_bad_inputs():
    with pytest.raises(ConfigError, match="at least one scenario"):
        run_fleet([])
    with pytest.raises(ConfigError, match="at least one engine"):
        run_fleet(_specs(1), engines=())
    with pytest.raises(ConfigError, match="software-coherent"):
        run_fleet(_specs(1), configs=(INTRA_HCC,))


def test_run_default_fleet_samples_reproducibly():
    a = run_default_fleet(
        2, seed=99, configs=(INTRA_BMI,), executor=SweepExecutor(jobs=1)
    )
    b = run_default_fleet(
        2, seed=99, configs=(INTRA_BMI,), executor=SweepExecutor(jobs=1)
    )
    assert a["details"][0]["digest"] == b["details"][0]["digest"]
    assert [d["scenario"] for d in a["details"]] == [
        d["scenario"] for d in b["details"]
    ]


def test_fleet_detects_a_divergent_cell(monkeypatch):
    """A corrupted digest must flip the verdict dirty (oracle + engine)."""
    import repro.eval.fleet as fleet_mod

    specs = _specs(1)
    real_run_cells = SweepExecutor.run_cells

    def corrupt(self, cells):
        results = real_run_cells(self, cells)
        # Corrupt the last software-coherent cell's digest.
        bad = results[-1]
        results[-1] = type(bad)(
            bad.app, bad.config, bad.stats, bad.metrics, bad.faults,
            "0" * 64,
        )
        return results

    monkeypatch.setattr(SweepExecutor, "run_cells", corrupt)
    verdict = fleet_mod.run_fleet(
        specs, configs=(INTRA_BMI,), engines=("ref", "fast"),
        executor=SweepExecutor(jobs=1), lint=False,
    )
    assert verdict["oracle_divergences"] == 1
    assert verdict["engine_mismatches"] == 1
    assert verdict["clean"] is False
    assert verdict["details"][0]["oracle_ok"] is False
    assert verdict["details"][0]["engine_ok"] is False


def test_gen_cells_cache_per_engine(tmp_path):
    """ref and fast results occupy distinct cache entries (engine kwarg)."""
    from repro.eval.cache import ResultCache

    cache = ResultCache(tmp_path)
    spec = ScenarioSpec(pattern="migratory", seed=2)
    ex = SweepExecutor(jobs=1, cache=cache)
    run_fleet(
        [spec], configs=(INTRA_BMI,), engines=("ref", "fast"), executor=ex,
        lint=False,
    )
    assert len(cache) == 3  # HCC reference + one per engine
    assert ex.stats.cache_misses == 3
    ex2 = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    run_fleet(
        [spec], configs=(INTRA_BMI,), engines=("ref", "fast"), executor=ex2,
        lint=False,
    )
    assert ex2.stats.cache_hits == 3
    assert ex2.stats.simulated == 0
