"""Tests for the BENCH_*.json trajectory helpers (repro.eval.bench)."""

import json

import pytest

from repro.eval import bench


class TestPercentile:
    def test_single_sample(self):
        assert bench.percentile([2.5], 95) == 2.5

    def test_nearest_rank_p50_p95(self):
        samples = [float(i) for i in range(1, 101)]
        assert bench.percentile(samples, 50) == 50.0
        assert bench.percentile(samples, 95) == 95.0

    def test_unsorted_input(self):
        assert bench.percentile([3.0, 1.0, 2.0], 95) == 3.0


class TestMeasure:
    def test_warmup_runs_not_timed(self):
        calls = []
        result, seconds = bench.measure(
            lambda: calls.append(1) or len(calls), warmup=2, repeat=3
        )
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert result == 5  # last timed run's return value
        assert len(seconds) == 3
        assert all(s >= 0 for s in seconds)

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            bench.measure(lambda: None, repeat=0)


class TestRecord:
    def test_payload_shape(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        payload = bench.record("probe", [0.2, 0.1, 0.3], warmup=1,
                               extra={"scale": 0.5})
        assert payload["name"] == "probe"
        assert payload["engine"] == "fast"
        assert payload["median_s"] == 0.2
        assert payload["p95_s"] == 0.3
        assert payload["runs_s"] == [0.2, 0.1, 0.3]
        assert payload["warmup"] == 1
        assert payload["scale"] == 0.5
        assert payload["git_rev"]  # non-empty ("unknown" outside a checkout)
        assert payload["timestamp"]

    def test_engine_defaults_to_ref(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert bench.record("probe", [1.0])["engine"] == "ref"

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert bench.record("probe", [1.0], engine="ref")["engine"] == "ref"


class TestWriteJson:
    def test_default_path_under_repo_root(self, monkeypatch, tmp_path):
        monkeypatch.setattr(bench, "REPO_ROOT", tmp_path)
        payload = bench.record("fig9", [1.5])
        path = bench.write_bench_json(payload)
        assert path == tmp_path / "BENCH_fig9.json"
        on_disk = json.loads(path.read_text())
        assert on_disk == payload

    def test_explicit_out_path(self, tmp_path):
        payload = bench.record("fig9", [1.5])
        path = bench.write_bench_json(payload, out=tmp_path / "custom.json")
        assert path == tmp_path / "custom.json"
        assert json.loads(path.read_text())["name"] == "fig9"
