"""Unit tests for the seeded generative traffic engine (repro.workloads.gen)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_HCC
from repro.core.machine import Machine
from repro.workloads.gen import (
    PATTERNS,
    ScenarioSpec,
    build_scenario,
    gen_machine_params,
    lint_scenario,
    run_gen,
    sample_specs,
    spawn_scenario,
    verify_scenario,
)
from repro.workloads.gen.patterns import BUILDERS


# ---------------------------------------------------------------------------
# ScenarioSpec
# ---------------------------------------------------------------------------


def test_every_pattern_has_a_builder():
    assert set(BUILDERS) == set(PATTERNS)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"pattern": "warp_speed"},
        {"pattern": "zipf_hot", "threads": 1},
        {"pattern": "zipf_hot", "footprint_lines": 0},
        {"pattern": "zipf_hot", "rounds": 0},
        {"pattern": "zipf_hot", "skew": 0.0},
    ],
)
def test_spec_validation_rejects_bad_parameters(kwargs):
    with pytest.raises(ConfigError):
        ScenarioSpec(seed=1, **kwargs)


def test_spec_dict_roundtrip_and_digest_stability():
    spec = ScenarioSpec(pattern="migratory", seed=42, threads=3)
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.digest() == spec.digest()
    assert spec.name.startswith("gen:migratory/")


def test_sample_specs_is_deterministic_and_covers_patterns():
    a = sample_specs(10, seed=7)
    b = sample_specs(10, seed=7)
    assert a == b
    assert len(a) == 10
    assert {s.pattern for s in a} == set(PATTERNS)
    assert sample_specs(10, seed=8) != a


# ---------------------------------------------------------------------------
# building and running scenarios
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("pattern", PATTERNS)
def test_each_pattern_runs_and_verifies_everywhere(pattern):
    spec = ScenarioSpec(pattern=pattern, seed=3)
    for config in (INTRA_HCC, INTRA_BASE, INTRA_BMI):
        run_gen(spec, config)  # verify=True raises on oracle mismatch


@pytest.mark.parametrize("pattern", PATTERNS)
def test_each_pattern_lints_clean(pattern):
    spec = ScenarioSpec(pattern=pattern, seed=3)
    report = lint_scenario(spec, INTRA_BMI)
    assert report.clean, [f.rule_id for f in report.findings]


def test_scenario_shape():
    spec = ScenarioSpec(pattern="producer_consumer", seed=5, threads=3)
    scenario = build_scenario(spec)
    assert scenario.spec is spec
    assert len(scenario.programs) == 3
    names = [name for name, _ in scenario.arrays]
    assert "sink" in names
    expected = dict(scenario.expected)
    assert len(expected["sink"]) == 3
    # Straight-line macro tuples: digestable without execution.
    assert scenario.program_digest() == build_scenario(spec).program_digest()


def test_spawn_scenario_rejects_thread_mismatch(small_intra):
    spec = ScenarioSpec(pattern="zipf_hot", seed=1, threads=3)
    scenario = build_scenario(spec)
    machine = Machine(small_intra, INTRA_BMI, num_threads=2)
    with pytest.raises(ConfigError, match="needs 3 threads"):
        spawn_scenario(machine, scenario)


def test_verify_scenario_names_the_first_bad_word():
    spec = ScenarioSpec(pattern="false_sharing", seed=9, threads=2)
    scenario = build_scenario(spec)
    machine = Machine(
        gen_machine_params(spec), INTRA_HCC, num_threads=spec.threads
    )
    arrays = spawn_scenario(machine, scenario)
    machine.run()
    verify_scenario(machine, scenario, arrays)  # the true image passes
    name0, words = scenario.expected[0]
    tampered = list(words)
    tampered[0] += 1
    bad = type(scenario)(
        spec=scenario.spec,
        arrays=scenario.arrays,
        programs=scenario.programs,
        expected=((name0, tuple(tampered)),) + tuple(scenario.expected[1:]),
    )
    with pytest.raises(AssertionError, match=rf"{name0}\[0\]"):
        verify_scenario(machine, bad, arrays)


def test_gen_machine_params_floor_four_cores():
    small = ScenarioSpec(pattern="zipf_hot", seed=1, threads=2)
    big = ScenarioSpec(pattern="zipf_hot", seed=1, threads=8)
    assert gen_machine_params(small).num_cores == 4
    assert gen_machine_params(big).num_cores == 8


def test_run_gen_under_faults_keeps_the_oracle():
    from repro.faults.model import random_plans

    spec = ScenarioSpec(pattern="lock_convoy", seed=11)
    plan = random_plans(1, seed=4)[0]
    clean = run_gen(spec, INTRA_BMI, memory_digest=True)
    hurt = run_gen(spec, INTRA_BMI, faults=plan, memory_digest=True)
    assert hurt.memory_digest == clean.memory_digest
    assert hurt.faults is not None
