"""Functional verification of every SPLASH workload under every config.

Each case runs a scaled-down instance on a 4-core block and checks the
numerical result against the workload's sequential reference — the strongest
evidence that the Model-1 annotations are sufficient on the incoherent
hierarchy.  A few additional cases run at 16 cores for the paper machine.
"""

import pytest

from repro import Machine, intra_block_machine
from repro.core.config import INTRA_CONFIGS
from repro.workloads import MODEL_ONE

SMALL_SCALE = {
    # Keep each case under ~1s of wall time.
    "fft": 0.6,
    "lu_cont": 0.5,
    "lu_noncont": 0.5,
    "cholesky": 0.8,
    "barnes": 0.5,
    "raytrace": 0.5,
    "volrend": 0.5,
    "ocean_cont": 0.6,
    "ocean_noncont": 0.6,
    "water_nsq": 0.4,
    "water_sp": 0.4,
}


@pytest.mark.parametrize("config", INTRA_CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("app", sorted(MODEL_ONE))
def test_workload_verifies(app, config):
    machine = Machine(intra_block_machine(4), config, num_threads=4)
    workload = MODEL_ONE[app](scale=SMALL_SCALE[app])
    workload.run_on(machine)  # verify() raises on any mismatch


@pytest.mark.parametrize("app", ["raytrace", "cholesky", "water_nsq"])
def test_lock_heavy_apps_at_16_cores(app):
    """The fine-grain apps also verify at the paper's 16-core block."""
    from repro.core.config import INTRA_BMI

    machine = Machine(intra_block_machine(16), INTRA_BMI, num_threads=16)
    MODEL_ONE[app](scale=0.6).run_on(machine)


def test_table1_patterns_declared():
    """Every app declares its Table I communication patterns."""
    from repro.workloads.base import Pattern

    want_main = {
        "fft": (Pattern.BARRIER,),
        "cholesky": (Pattern.OUTSIDE_CRITICAL,),
        "raytrace": (Pattern.CRITICAL,),
    }
    for app, patterns in want_main.items():
        assert MODEL_ONE[app].main_patterns == patterns
    assert Pattern.DATA_RACE in MODEL_ONE["raytrace"].other_patterns
    assert Pattern.FLAG in MODEL_ONE["cholesky"].other_patterns


def test_lu_layouts_differ_in_sharing():
    """Packed rows must actually share lines across owners; padded must not."""
    from repro.core.config import INTRA_HCC

    flits = {}
    for app in ("lu_cont", "lu_noncont"):
        machine = Machine(intra_block_machine(4), INTRA_HCC, num_threads=4)
        stats = MODEL_ONE[app](scale=0.5).run_on(machine)
        flits[app] = stats.dir_invalidations
    # False sharing in the packed layout drives extra invalidations.
    assert flits["lu_noncont"] > flits["lu_cont"]
