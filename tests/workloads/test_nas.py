"""Functional verification of the Model-2 workloads under every config."""

import pytest

from repro import Machine, inter_block_machine
from repro.core.config import INTER_CONFIGS, INTER_ADDR, INTER_ADDR_L
from repro.workloads import MODEL_TWO

SMALL_SCALE = {
    "jacobi": 0.15,
    "ep": 0.25,
    "is": 0.15,
    "cg": 0.35,
}


@pytest.mark.parametrize("config", INTER_CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("app", sorted(SMALL_SCALE))
def test_workload_verifies(app, config):
    machine = Machine(inter_block_machine(2, 2), config, num_threads=4)
    MODEL_TWO[app](scale=SMALL_SCALE[app]).run_on(machine)


@pytest.mark.parametrize("app", sorted(SMALL_SCALE))
def test_full_machine_addr_level(app):
    """Each app verifies on the paper's 4×8 machine under Addr+L."""
    machine = Machine(inter_block_machine(4, 8), INTER_ADDR_L, num_threads=32)
    MODEL_TWO[app](scale=SMALL_SCALE[app]).run_on(machine)


class TestFigure11Shapes:
    def _global_ops(self, app, config, scale):
        machine = Machine(inter_block_machine(4, 8), config, num_threads=32)
        stats = MODEL_TWO[app](scale=scale).run_on(machine)
        return stats.global_wb_lines, stats.global_inv_lines

    def test_reductions_cannot_be_localized(self):
        """EP: Addr and Addr+L issue identical global op counts."""
        addr = self._global_ops("ep", INTER_ADDR, 0.25)
        addr_l = self._global_ops("ep", INTER_ADDR_L, 0.25)
        assert addr == addr_l

    def test_jacobi_localizes_most_ops(self):
        addr_wb, addr_inv = self._global_ops("jacobi", INTER_ADDR, 0.3)
        al_wb, al_inv = self._global_ops("jacobi", INTER_ADDR_L, 0.3)
        assert al_wb < 0.5 * addr_wb
        assert al_inv < 0.5 * addr_inv

    def test_cg_localizes_invs_not_wbs(self):
        """CG: some INVs become local; WBs stay global (whole-range WB_L3)."""
        addr_wb, addr_inv = self._global_ops("cg", INTER_ADDR, 0.35)
        al_wb, al_inv = self._global_ops("cg", INTER_ADDR_L, 0.35)
        assert al_wb == addr_wb
        assert 0.5 * addr_inv < al_inv < addr_inv


class TestHierarchicalReduction:
    """Paper §VII-C: rewriting reductions hierarchically restores locality."""

    @pytest.mark.parametrize("config", INTER_CONFIGS, ids=lambda c: c.name)
    def test_ep_hier_verifies(self, config):
        machine = Machine(inter_block_machine(2, 2), config, num_threads=4)
        MODEL_TWO["ep_hier"](scale=0.25, num_blocks=2).run_on(machine)

    def test_hier_reduce_localizes_global_ops(self):
        flat_machine = Machine(
            inter_block_machine(4, 8), INTER_ADDR_L, num_threads=32
        )
        flat = MODEL_TWO["ep"](scale=0.5).run_on(flat_machine)
        hier_machine = Machine(
            inter_block_machine(4, 8), INTER_ADDR_L, num_threads=32
        )
        hier = MODEL_TWO["ep_hier"](scale=0.5, num_blocks=4).run_on(hier_machine)
        # The rewrite turns most global WB/INV lines into local ones.
        assert hier.global_wb_lines < flat.global_wb_lines
        assert hier.global_inv_lines < flat.global_inv_lines
        # And it is faster end to end.
        assert hier.exec_time < flat.exec_time
