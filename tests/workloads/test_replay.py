"""Trace-driven replay: reconstruction units + the round-trip guarantee.

The headline contract is ``record -> replay -> re-record is bit-identical``
(events and final MachineStats alike), checked here over the *full* litmus
registry — determinate and intentionally broken kernels, intra and inter
models, both simulator engines.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.core.config import INTRA_BMI, inter_config
from repro.core.machine import Machine
from repro.eval.runner import run_litmus
from repro.isa import ops as isa
from repro.obs.schema import TraceSchemaError
from repro.obs.trace import Tracer
from repro.workloads.litmus import LITMUS, machine_params
from repro.workloads.replay import (
    infer_num_threads,
    load_events,
    op_from_event,
    programs_by_core,
    run_replay,
    spawn_replay,
)

INTER_ADDR_L = inter_config("Addr+L")


def _config_for(kernel):
    return INTER_ADDR_L if kernel.model == "inter" else INTRA_BMI


def roundtrip(name: str, engine: str):
    """Record one litmus kernel, replay it, re-record; return both sides."""
    kernel = LITMUS[name]
    config = _config_for(kernel)
    rec = Tracer()
    first = run_litmus(
        name, config, verify=False, tracer=rec, memory_digest=True,
        engine=engine,
    )
    rep = Tracer()
    second = run_replay(
        rec.events, config, machine_params=machine_params(kernel),
        num_threads=kernel.threads, tracer=rep, memory_digest=True,
        engine=engine,
    )
    return rec, first, rep, second


@pytest.mark.parametrize("name", sorted(LITMUS))
def test_roundtrip_bit_identical_full_registry(name):
    rec, first, rep, second = roundtrip(name, "ref")
    assert rep.events == rec.events
    assert second.stats == first.stats
    assert second.memory_digest == first.memory_digest


@pytest.mark.parametrize("name", sorted(LITMUS))
def test_roundtrip_bit_identical_fast_engine(name):
    rec, first, rep, second = roundtrip(name, "fast")
    assert rep.events == rec.events
    assert second.stats == first.stats
    assert second.memory_digest == first.memory_digest


# ---------------------------------------------------------------------------
# event -> op reconstruction units
# ---------------------------------------------------------------------------


def test_read_write_compute_reconstruct():
    rd = op_from_event({"kind": "read", "core": 0, "cycle": 0, "addr": 64})
    assert type(rd) is isa.Read and rd.addr == 64
    wr = op_from_event(
        {"kind": "write", "core": 0, "cycle": 0, "addr": 68, "val": -3}
    )
    assert type(wr) is isa.Write and (wr.addr, wr.value) == (68, -3)
    cp = op_from_event({"kind": "compute", "core": 0, "cycle": 0, "lat": 7})
    assert type(cp) is isa.Compute and cp.cycles == 7


def test_object_valued_write_replays_as_none():
    # A write event with no `val` recorded an unserializable object value;
    # the replayed store must carry None so the re-record omits `val` too.
    wr = op_from_event({"kind": "write", "core": 0, "cycle": 0, "addr": 64})
    assert type(wr) is isa.Write and wr.value is None


def test_sync_events_reconstruct_with_operands():
    bar = op_from_event(
        {"kind": "sync", "core": 0, "cycle": 0, "op": "barrier",
         "arg": 2, "n": 4}
    )
    assert type(bar) is isa.Barrier and (bar.bid, bar.count) == (2, 4)
    fw = op_from_event(
        {"kind": "sync", "core": 0, "cycle": 0, "op": "flag_wait",
         "arg": 1, "n": 9}
    )
    assert type(fw) is isa.FlagWait and (fw.fid, fw.value) == (1, 9)
    lk = op_from_event(
        {"kind": "sync", "core": 0, "cycle": 0, "op": "lock_acquire", "arg": 3}
    )
    assert type(lk) is isa.LockAcquire and lk.lid == 3


def test_hardware_events_are_skipped():
    for ev in (
        {"kind": "fill", "core": 0, "cycle": 0, "addr": 64},
        {"kind": "evict", "core": 0, "cycle": 0, "addr": 64},
        {"kind": "fault", "core": 0, "cycle": 0},
        {"kind": "sync", "core": 0, "cycle": 0, "op": "barrier_grant"},
        {"kind": "inv", "core": 0, "cycle": 0, "op": "DIR_INV", "addr": 64},
        {"kind": "wb", "core": 0, "cycle": 0, "op": "DIR_FWD", "addr": 64},
    ):
        assert op_from_event(ev) is None, ev


def test_wb_all_via_meb_and_epoch_flags_roundtrip():
    wb = op_from_event(
        {"kind": "wb", "core": 0, "cycle": 0, "op": "WB_ALL", "arg": 1}
    )
    assert type(wb) is isa.WBAll and wb.via_meb
    ep = op_from_event(
        {"kind": "epoch", "core": 0, "cycle": 0, "op": "epoch_begin", "arg": 3}
    )
    assert type(ep) is isa.EpochBegin
    assert ep.record_meb and ep.ieb_mode


def test_programs_by_core_partitions_in_order():
    events = [
        {"kind": "read", "core": 1, "cycle": 0, "addr": 64},
        {"kind": "fill", "core": 0, "cycle": 1, "addr": 64},
        {"kind": "write", "core": 0, "cycle": 2, "addr": 68, "val": 5},
        {"kind": "read", "core": 1, "cycle": 3, "addr": 68},
    ]
    streams = programs_by_core(events)
    assert sorted(streams) == [0, 1]
    assert [type(op) for op in streams[1]] == [isa.Read, isa.Read]
    assert infer_num_threads(streams) == 2


def test_infer_num_threads_rejects_empty_trace():
    with pytest.raises(ConfigError):
        infer_num_threads({})


def test_spawn_replay_rejects_stranded_cores(small_intra):
    machine = Machine(small_intra, INTRA_BMI, num_threads=2)
    events = [{"kind": "read", "core": 3, "cycle": 0, "addr": 64}]
    with pytest.raises(ConfigError, match="unplaced core"):
        spawn_replay(machine, events)


def test_load_events_validates_with_line_numbers(tmp_path):
    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"kind": "read"\n')
    with pytest.raises(TraceSchemaError, match="bad.jsonl:1"):
        load_events(bad_json)
    bad_schema = tmp_path / "schema.jsonl"
    bad_schema.write_text('{"kind": "warp", "core": 0, "cycle": 0}\n')
    with pytest.raises(TraceSchemaError, match="schema.jsonl:1"):
        load_events(bad_schema)


def test_run_replay_accepts_a_jsonl_path(tmp_path):
    kernel = LITMUS["mp2"] if "mp2" in LITMUS else LITMUS[sorted(LITMUS)[0]]
    rec = Tracer()
    first = run_litmus(
        kernel.name, _config_for(kernel), verify=False, tracer=rec,
        memory_digest=True,
    )
    path = tmp_path / "t.jsonl"
    rec.write_jsonl(path)
    second = run_replay(
        path, _config_for(kernel), machine_params=machine_params(kernel),
        memory_digest=True,
    )
    assert second.stats == first.stats
    assert second.memory_digest == first.memory_digest
