"""PackedCache vs the reference Cache: one behavioral contract, two layouts.

Every test here runs against *both* cache classes — the packed flat-array
structure is only correct if it is observationally identical to the
per-set-dict reference (same hits, same victims, same traversal order,
same line IDs).  The line-ID stability tests are the regression suite for
the paper's hardware framing: a resident line occupies one physical way
until eviction, so its tag-array position must not move when the LRU
order changes.
"""

import pytest

from repro.common.params import CacheParams
from repro.engines.fastcache import PackedCache
from repro.mem.cache import Cache
from repro.mem.line import CacheLine

CACHE_CLASSES = [Cache, PackedCache]


def make(cls, assoc=2, sets=4):
    params = CacheParams(
        size_bytes=assoc * sets * 64, assoc=assoc, line_bytes=64, round_trip=1
    )
    return cls(params, name="tiny")


def line(addr, fill=0):
    return CacheLine(addr, data=[fill] * 16)


@pytest.fixture(params=CACHE_CLASSES, ids=lambda c: c.__name__)
def cache_cls(request):
    return request.param


class TestContract:
    """The reference test-suite behaviors, run against both classes."""

    def test_miss_returns_none(self, cache_cls):
        assert make(cache_cls).lookup(5) is None

    def test_insert_then_hit(self, cache_cls):
        c = make(cache_cls)
        c.insert(line(5))
        hit = c.lookup(5)
        assert hit is not None and hit.line_addr == 5

    def test_reinsert_same_line_no_victim(self, cache_cls):
        c = make(cache_cls)
        c.insert(line(5))
        assert c.insert(line(5)) is None
        assert c.occupancy == 1

    def test_evicts_least_recently_used(self, cache_cls):
        c = make(cache_cls, assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        c.lookup(0)  # 0 becomes MRU
        victim = c.insert(line(2))
        assert victim is not None and victim.line_addr == 1

    def test_untouched_lookup_preserves_order(self, cache_cls):
        c = make(cache_cls, assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        c.lookup(0, touch=False)
        victim = c.insert(line(2))
        assert victim.line_addr == 0

    def test_victim_comes_from_same_set_only(self, cache_cls):
        c = make(cache_cls, assoc=1, sets=4)
        c.insert(line(0))
        assert c.insert(line(1)) is None  # different set
        victim = c.insert(line(4))  # same set as 0
        assert victim.line_addr == 0

    def test_remove_then_miss(self, cache_cls):
        c = make(cache_cls)
        c.insert(line(3))
        assert c.remove(3).line_addr == 3
        assert c.lookup(3) is None
        assert c.remove(9) is None

    def test_dirty_lines_filter(self, cache_cls):
        c = make(cache_cls)
        a, b = line(0), line(1)
        a.mark_dirty(2)
        c.insert(a)
        c.insert(b)
        assert [l.line_addr for l in c.dirty_lines()] == [0]

    def test_clear_visits_and_empties(self, cache_cls):
        c = make(cache_cls)
        c.insert(line(0))
        c.insert(line(1))
        seen = []
        n = c.clear(on_evict=lambda l: seen.append(l.line_addr))
        assert n == 2 and sorted(seen) == [0, 1]
        assert c.occupancy == 0

    def test_line_id_missing_raises(self, cache_cls):
        with pytest.raises(KeyError):
            make(cache_cls).line_id(9)


class TestTraversalOrder:
    """lines() must walk sets ascending, each set LRU -> MRU."""

    def test_lru_to_mru_within_set(self, cache_cls):
        c = make(cache_cls, assoc=3, sets=1)
        for la in (0, 1, 2):
            c.insert(line(la))
        c.lookup(0)  # order now 1, 2, 0
        assert [l.line_addr for l in c.lines()] == [1, 2, 0]

    def test_sets_ascending_across_sets(self, cache_cls):
        c = make(cache_cls, assoc=2, sets=4)
        for la in (7, 2, 5, 0):  # sets 3, 2, 1, 0 — insertion order reversed
            c.insert(line(la))
        assert [l.line_addr for l in c.lines()] == [0, 5, 2, 7]


class TestLineIDStability:
    """Line IDs model physical ways: stable until eviction or removal.

    Regression for the reference cache's old O(assoc) ``line_id`` scan,
    whose IDs *moved* whenever an LRU touch reordered the set dict.  Both
    engines feed line IDs into the WB ALL sampling path, so an unstable ID
    is a correctness bug, not just a slow one.
    """

    def test_id_survives_lru_touches(self, cache_cls):
        c = make(cache_cls, assoc=4, sets=2)
        for la in (0, 2, 4, 6):  # all in set 0
            c.insert(line(la))
        before = {la: c.line_id(la) for la in (0, 2, 4, 6)}
        for la in (6, 0, 4, 2, 0):  # scramble the LRU order
            c.lookup(la)
        assert {la: c.line_id(la) for la in (0, 2, 4, 6)} == before

    def test_ids_distinct_within_set_bounds(self, cache_cls):
        c = make(cache_cls, assoc=4, sets=2)
        for la in (0, 2, 4, 6):
            c.insert(line(la))
        ids = [c.line_id(la) for la in (0, 2, 4, 6)]
        assert len(set(ids)) == 4
        assert all(0 <= i < c.params.num_lines for i in ids)

    def test_eviction_reuses_victim_way(self, cache_cls):
        c = make(cache_cls, assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        way_of_0 = c.line_id(0)
        c.lookup(1)  # keep 1 MRU; 0 is the victim
        victim = c.insert(line(2))
        assert victim.line_addr == 0
        assert c.line_id(2) == way_of_0  # new line lands in the freed way

    def test_in_place_replace_keeps_way(self, cache_cls):
        c = make(cache_cls, assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        before = c.line_id(0)
        c.insert(line(0, fill=9))  # replace resident line in place
        assert c.line_id(0) == before

    def test_remove_frees_way_for_next_insert(self, cache_cls):
        c = make(cache_cls, assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        freed = c.line_id(0)
        c.remove(0)
        c.insert(line(2))
        assert c.line_id(2) == freed

    def test_random_geometry_and_ops_identical(self):
        """Hypothesis: random CacheParams + op sequences, both classes agree.

        The structural twin of the engine-level differential test: any
        (assoc, sets) geometry, any insert/lookup/remove interleaving —
        residency, victims, traversal order, and line IDs must match.
        """
        from hypothesis import given, settings, strategies as st

        geometry = st.tuples(
            st.integers(min_value=1, max_value=4),  # assoc
            st.sampled_from([1, 2, 4, 8]),  # sets (power of two)
        )
        ops = st.lists(
            st.tuples(
                st.sampled_from(["insert", "lookup", "touchless", "remove"]),
                st.integers(min_value=0, max_value=23),
            ),
            max_size=60,
        )

        @settings(max_examples=60, deadline=None)
        @given(geom=geometry, ops=ops)
        def check(geom, ops):
            assoc, sets = geom
            ref, fast = make(Cache, assoc, sets), make(PackedCache, assoc, sets)
            for kind, la in ops:
                if kind == "insert":
                    rv = ref.insert(line(la))
                    fv = fast.insert(line(la))
                    assert (rv and rv.line_addr) == (fv and fv.line_addr)
                elif kind == "lookup":
                    assert (ref.lookup(la) is None) == (fast.lookup(la) is None)
                elif kind == "touchless":
                    assert (ref.lookup(la, touch=False) is None) == (
                        fast.lookup(la, touch=False) is None
                    )
                else:
                    rv, fv = ref.remove(la), fast.remove(la)
                    assert (rv and rv.line_addr) == (fv and fv.line_addr)
                walk = [l.line_addr for l in ref.lines()]
                assert walk == [l.line_addr for l in fast.lines()]
                assert [ref.line_id(a) for a in walk] == [
                    fast.line_id(a) for a in walk
                ]

        check()

    def test_both_engines_assign_identical_ids(self):
        """Drive the same op sequence into both classes: IDs must match."""
        ref, fast = make(Cache, assoc=2, sets=2), make(PackedCache, assoc=2, sets=2)
        ops = [
            ("insert", 0), ("insert", 1), ("insert", 2), ("lookup", 0),
            ("insert", 4), ("remove", 1), ("insert", 3), ("insert", 6),
            ("lookup", 2), ("insert", 8),
        ]
        for kind, la in ops:
            if kind == "insert":
                ref.insert(line(la))
                fast.insert(line(la))
            elif kind == "lookup":
                ref.lookup(la)
                fast.lookup(la)
            else:
                ref.remove(la)
                fast.remove(la)
            resident = sorted(ref.resident_line_addrs())
            assert resident == sorted(fast.resident_line_addrs())
            assert [ref.line_id(a) for a in resident] == [
                fast.line_id(a) for a in resident
            ]
