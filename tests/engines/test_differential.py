"""Property-based differential test: random programs, both engines.

Hypothesis generates small multithreaded programs over the whole batched
ISA — scalar and batch reads/writes, interleaved copy/accumulate
macro-ops, WB/INV annotations (range and ALL), MEB/IEB epochs, and
compute delays — and runs each program on the reference and the fast
engine under the same configuration.  Statistics, observed load values,
and final memory must match bit-for-bit.

This is the adversarial complement to ``test_equivalence``: the litmus
kernels and workloads exercise *sensible* programs, while Hypothesis
explores the weird corners (INV of dirty data, WB of clean lines, epochs
around batches, redundant annotations) where a fused fast path is most
likely to drift from the per-op reference.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.params import WORD_BYTES, intra_block_machine
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_HCC
from repro.core.machine import Machine
from repro.isa import ops as isa

NTHREADS = 3
NWORDS = 48  # three cache lines' worth of shared words

#: Instruction vocabulary.  Word indices are into the one shared array;
#: lengths are in words.  ("epoch", meb, ieb, body) wraps *body* in
#: EpochBegin/EpochEnd so MEB/IEB arming is always well-nested.
_idx = st.integers(min_value=0, max_value=NWORDS - 1)
_val = st.integers(min_value=0, max_value=999)
_idx_list = st.lists(_idx, min_size=1, max_size=6)

_plain_instr = st.one_of(
    st.tuples(st.just("read"), _idx),
    st.tuples(st.just("write"), _idx, _val),
    st.tuples(st.just("read_batch"), _idx_list),
    st.tuples(st.just("write_batch"), st.lists(st.tuples(_idx, _val),
                                               min_size=1, max_size=6)),
    st.tuples(st.just("copy_batch"), _idx_list, _idx_list),
    st.tuples(st.just("add_batch"), st.lists(st.tuples(_idx, _val),
                                             min_size=1, max_size=6)),
    st.tuples(st.just("wb"), _idx, st.integers(min_value=1, max_value=16)),
    st.tuples(st.just("inv"), _idx, st.integers(min_value=1, max_value=16)),
    st.tuples(st.just("wb_all"), st.booleans()),
    st.just(("inv_all",)),
    st.tuples(st.just("compute"), st.integers(min_value=1, max_value=20)),
)

_instr = st.one_of(
    _plain_instr,
    st.tuples(st.just("epoch"), st.booleans(), st.booleans(),
              st.lists(_plain_instr, min_size=1, max_size=4)),
)

_program = st.lists(_instr, min_size=1, max_size=12)
_programs = st.lists(_program, min_size=NTHREADS, max_size=NTHREADS)

#: Coherence annotations and epochs only exist on the incoherent configs;
#: under HCC they are filtered out (identically for both engines).
_INCOHERENT_ONLY = {"wb", "inv", "wb_all", "inv_all", "epoch"}


def _emit(instr, arr, obs):
    """Yield the ISA ops for one instruction tuple; record loads in *obs*."""
    kind = instr[0]
    if kind == "read":
        obs.append((yield isa.Read(arr.addr(instr[1]))))
    elif kind == "write":
        yield isa.Write(arr.addr(instr[1]), instr[2])
    elif kind == "read_batch":
        values = yield isa.ReadBatch([arr.addr(i) for i in instr[1]])
        obs.extend(values)
    elif kind == "write_batch":
        yield isa.WriteBatch([arr.addr(i) for i, _ in instr[1]],
                             [v for _, v in instr[1]])
    elif kind == "copy_batch":
        n = min(len(instr[1]), len(instr[2]))
        yield isa.CopyBatch([arr.addr(i) for i in instr[1][:n]],
                            [arr.addr(i) for i in instr[2][:n]])
    elif kind == "add_batch":
        yield isa.AddBatch([arr.addr(i) for i, _ in instr[1]],
                           [v for _, v in instr[1]])
    elif kind == "wb":
        yield isa.WB(arr.addr(instr[1]), instr[2] * WORD_BYTES)
    elif kind == "inv":
        yield isa.INV(arr.addr(instr[1]), instr[2] * WORD_BYTES)
    elif kind == "wb_all":
        yield isa.WBAll(via_meb=instr[1])
    elif kind == "inv_all":
        yield isa.INVAll()
    elif kind == "compute":
        yield isa.Compute(instr[1])
    elif kind == "epoch":
        yield isa.EpochBegin(record_meb=instr[1], ieb_mode=instr[2])
        for sub in instr[3]:
            yield from _emit(sub, arr, obs)
        yield isa.EpochEnd()


def _run(programs, config, engine):
    """One deterministic run; returns (stats dict, observations, memory)."""
    coherent = config.hardware_coherent
    machine = Machine(
        intra_block_machine(4), config, num_threads=NTHREADS, engine=engine
    )
    arr = machine.array("a", NWORDS)
    obs: dict[int, list] = {}

    def make_program(instrs, tid):
        def program(ctx):
            mine = obs.setdefault(tid, [])
            for instr in instrs:
                if coherent and instr[0] in _INCOHERENT_ONLY:
                    continue
                yield from _emit(instr, arr, mine)
        return program

    for tid, instrs in enumerate(programs):
        machine.spawn(make_program(instrs, tid))
    stats = machine.run()
    return stats.to_dict(), obs, machine.read_array(arr)


@settings(max_examples=30, deadline=None)
@given(programs=_programs, config=st.sampled_from([INTRA_BASE, INTRA_BMI,
                                                   INTRA_HCC]))
def test_random_programs_engine_equivalent(programs, config):
    ref = _run(programs, config, "ref")
    fast = _run(programs, config, "fast")
    assert fast == ref
