"""Bit-identity of the fast engine against the reference engine.

The packed fast-path core is an *optimization*, not a model: for every
program, every configuration, and every machine family it must produce the
exact :class:`~repro.sim.stats.MachineStats` and the exact final-memory
image of the reference core.  This module enforces that contract on

* every litmus kernel (including the deliberately broken ones — a stale
  read is deterministic in simulation, so even divergent programs must
  diverge *identically* on both engines) under every Table II
  configuration of its machine family, and
* a sample of the real SPLASH-2/NAS workloads at reduced scale.

The CI ``fastcore-equivalence`` job runs this file on every push; the full
workload matrix is covered by the figure-golden tests run under
``REPRO_ENGINE=fast``.
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    INTER_CONFIGS,
    INTRA_CONFIGS,
    inter_config,
    intra_config,
)
from repro.eval.runner import run_inter, run_intra, run_litmus
from repro.workloads.litmus import LITMUS


def _result_fingerprint(result):
    """Everything an engine could plausibly get wrong, as one dict."""
    d = result.stats.to_dict()
    d["memory_digest"] = result.memory_digest
    return d


_LITMUS_CELLS = [
    (name, cfg.name)
    for name, kernel in sorted(LITMUS.items())
    for cfg in (INTER_CONFIGS if kernel.model == "inter" else INTRA_CONFIGS)
]


@pytest.mark.parametrize("name,config", _LITMUS_CELLS)
def test_litmus_engine_equivalence(name, config):
    """Both engines agree bit-for-bit on every (kernel, config) cell."""
    kernel = LITMUS[name]
    cfg = (
        inter_config(config) if kernel.model == "inter"
        else intra_config(config)
    )
    # verify=False: broken kernels fail their own oracle by design; the
    # claim under test is ref == fast, not that the kernel is correct.
    ref = run_litmus(name, cfg, verify=False, memory_digest=True, engine="ref")
    fast = run_litmus(name, cfg, verify=False, memory_digest=True, engine="fast")
    assert _result_fingerprint(fast) == _result_fingerprint(ref)


_WORKLOAD_CELLS = [
    ("fft", "HCC"),
    ("fft", "B+M+I"),
    ("volrend", "Base"),
    ("volrend", "B+M+I"),
    ("water_nsq", "B+M"),
]


@pytest.mark.parametrize("app,config", _WORKLOAD_CELLS)
def test_intra_workload_engine_equivalence(app, config):
    cfg = intra_config(config)
    ref = run_intra(app, cfg, scale=0.4, memory_digest=True, engine="ref")
    fast = run_intra(app, cfg, scale=0.4, memory_digest=True, engine="fast")
    assert _result_fingerprint(fast) == _result_fingerprint(ref)


@pytest.mark.parametrize("app,config", [("cg", "Addr+L"), ("jacobi", "Base")])
def test_inter_workload_engine_equivalence(app, config):
    cfg = inter_config(config)
    ref = run_inter(app, cfg, scale=0.4, memory_digest=True, engine="ref")
    fast = run_inter(app, cfg, scale=0.4, memory_digest=True, engine="fast")
    assert _result_fingerprint(fast) == _result_fingerprint(ref)


def test_engine_registry_resolution(monkeypatch):
    """Explicit name > $REPRO_ENGINE > default; unknown names are rejected."""
    from repro.common.errors import ConfigError
    from repro.engines import resolve_engine

    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert resolve_engine().name == "ref"
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    assert resolve_engine().name == "fast"
    assert resolve_engine("ref").name == "ref"  # explicit beats env
    monkeypatch.setenv("REPRO_ENGINE", "")
    assert resolve_engine().name == "ref"  # empty means unset
    with pytest.raises(ConfigError):
        resolve_engine("turbo")
