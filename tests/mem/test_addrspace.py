"""Tests for the address-space allocator and array views."""

import pytest

from repro.common.errors import AddressError
from repro.common.params import WORD_BYTES
from repro.mem.addrspace import AddressSpace, SharedArray


class TestAddressSpace:
    def test_alloc_line_aligned(self):
        sp = AddressSpace(line_bytes=64)
        a = sp.alloc("a", 5)
        b = sp.alloc("b", 3)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        assert b.base >= a.end

    def test_address_zero_never_mapped(self):
        sp = AddressSpace()
        a = sp.alloc("a", 1)
        assert a.base > 0

    def test_duplicate_name_rejected(self):
        sp = AddressSpace()
        sp.alloc("a", 1)
        with pytest.raises(AddressError):
            sp.alloc("a", 1)

    def test_zero_words_rejected(self):
        with pytest.raises(AddressError):
            AddressSpace().alloc("a", 0)

    def test_lookup_and_owner(self):
        sp = AddressSpace()
        a = sp.alloc("a", 4)
        assert sp.lookup("a") is a
        assert sp.owner_of(a.base + 4) is a
        assert sp.owner_of(10**9) is None
        with pytest.raises(AddressError):
            sp.lookup("missing")


class TestSharedArray1D:
    def test_addresses_are_word_strided(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "v", 8)
        assert arr.addr(1) - arr.addr(0) == WORD_BYTES
        assert len(arr) == 8 and arr.size == 8

    def test_bounds_checked(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "v", 8)
        with pytest.raises(AddressError):
            arr.addr(8)
        with pytest.raises(AddressError):
            arr.addr(-1)

    def test_range_covers_elements(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "v", 8)
        addr, length = arr.range(2, 3)
        assert addr == arr.addr(2)
        assert length == 3 * WORD_BYTES

    def test_range_default_to_end(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "v", 8)
        addr, length = arr.range()
        assert addr == arr.addr(0) and length == 8 * WORD_BYTES

    def test_range_out_of_bounds(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "v", 8)
        with pytest.raises(AddressError):
            arr.range(6, 4)


class TestSharedArray2D:
    def test_packed_rows_are_contiguous(self):
        sp = AddressSpace(line_bytes=64)
        arr = SharedArray(sp, "m", (4, 10), pad_rows=False)
        assert arr.addr(1, 0) - arr.addr(0, 0) == 10 * WORD_BYTES

    def test_padded_rows_line_aligned(self):
        sp = AddressSpace(line_bytes=64)
        arr = SharedArray(sp, "m", (4, 10), pad_rows=True)
        stride = arr.addr(1, 0) - arr.addr(0, 0)
        assert stride == 64  # 10 words padded to one 16-word line
        assert arr.addr(1, 0) % 64 == arr.addr(0, 0) % 64

    def test_row_range(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "m", (4, 10), pad_rows=True)
        addr, length = arr.row_range(2)
        assert addr == arr.addr(2, 0)
        assert length == 10 * WORD_BYTES  # logical row only, not the pad

    def test_2d_bounds(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "m", (4, 10))
        with pytest.raises(AddressError):
            arr.addr(4, 0)
        with pytest.raises(AddressError):
            arr.addr(0, 10)
        with pytest.raises(AddressError):
            arr.addr(0)  # missing second index

    def test_element_addrs_row_major(self):
        sp = AddressSpace()
        arr = SharedArray(sp, "m", (2, 3))
        addrs = list(arr.element_addrs())
        assert len(addrs) == 6
        assert addrs[0] == arr.addr(0, 0)
        assert addrs[3] == arr.addr(1, 0)

    def test_bad_shape_rejected(self):
        sp = AddressSpace()
        with pytest.raises(AddressError):
            SharedArray(sp, "m", (0, 3))
        with pytest.raises(AddressError):
            SharedArray(sp, "m3", (2, 3, 4))  # type: ignore[arg-type]
