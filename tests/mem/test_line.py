"""Tests for cache-line state and per-word dirty bits."""

import pytest

from repro.mem.line import CacheLine, MESIState


def make_line(words=16):
    return CacheLine(line_addr=7, data=[0] * words)


def test_new_line_is_clean():
    line = make_line()
    assert not line.dirty
    assert line.dirty_words() == []
    assert line.num_dirty_words() == 0


def test_mark_dirty_sets_single_word():
    line = make_line()
    line.mark_dirty(3)
    assert line.dirty
    assert line.is_word_dirty(3)
    assert not line.is_word_dirty(2)
    assert line.dirty_words() == [3]


def test_mark_dirty_multiple_words():
    line = make_line()
    for w in (0, 5, 15):
        line.mark_dirty(w)
    assert line.dirty_words() == [0, 5, 15]
    assert line.num_dirty_words() == 3


def test_mark_dirty_idempotent():
    line = make_line()
    line.mark_dirty(4)
    line.mark_dirty(4)
    assert line.num_dirty_words() == 1


def test_mark_dirty_out_of_range():
    line = make_line(words=4)
    with pytest.raises(IndexError):
        line.mark_dirty(4)
    with pytest.raises(IndexError):
        line.mark_dirty(-1)


def test_clean_clears_all_dirty_bits():
    line = make_line()
    line.mark_dirty(1)
    line.mark_dirty(9)
    line.clean()
    assert not line.dirty
    assert line.dirty_mask == 0


def test_default_state_is_na_for_incoherent():
    assert make_line().state == MESIState.NA


def test_word_count():
    assert make_line(words=16).word_count() == 16
