"""Tests for the set-associative cache array with LRU replacement."""

import pytest

from repro.common.params import CacheParams
from repro.mem.cache import Cache
from repro.mem.line import CacheLine


def tiny_cache(assoc=2, sets=4):
    params = CacheParams(
        size_bytes=assoc * sets * 64, assoc=assoc, line_bytes=64, round_trip=1
    )
    return Cache(params, name="tiny")


def line(addr):
    return CacheLine(addr, data=[0] * 16)


class TestLookupInsert:
    def test_miss_returns_none(self):
        assert tiny_cache().lookup(5) is None

    def test_insert_then_hit(self):
        c = tiny_cache()
        c.insert(line(5))
        hit = c.lookup(5)
        assert hit is not None and hit.line_addr == 5

    def test_set_mapping_modulo(self):
        c = tiny_cache(sets=4)
        assert c.set_index(0) == 0
        assert c.set_index(4) == 0
        assert c.set_index(6) == 2

    def test_reinsert_same_line_no_victim(self):
        c = tiny_cache()
        c.insert(line(5))
        assert c.insert(line(5)) is None
        assert c.occupancy == 1


class TestLRU:
    def test_evicts_least_recently_used(self):
        c = tiny_cache(assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        c.lookup(0)  # 0 becomes MRU
        victim = c.insert(line(2))
        assert victim is not None and victim.line_addr == 1

    def test_untouched_lookup_preserves_order(self):
        c = tiny_cache(assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        c.lookup(0, touch=False)
        victim = c.insert(line(2))
        assert victim.line_addr == 0

    def test_victim_comes_from_same_set_only(self):
        c = tiny_cache(assoc=1, sets=4)
        c.insert(line(0))
        assert c.insert(line(1)) is None  # different set
        victim = c.insert(line(4))  # same set as 0
        assert victim.line_addr == 0

    def test_mru_hit_keeps_lru_order_correct(self):
        """The MRU fast path (no pop/reinsert) must not disturb LRU."""
        c = tiny_cache(assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))  # 1 is MRU
        c.lookup(1)  # MRU hit: short-circuits, order unchanged
        victim = c.insert(line(2))
        assert victim.line_addr == 0

    def test_repeated_mru_hits_then_promotion(self):
        c = tiny_cache(assoc=2, sets=1)
        c.insert(line(0))
        c.insert(line(1))
        for _ in range(3):
            c.lookup(1)  # stays MRU
        c.lookup(0)  # promotes 0 to MRU
        victim = c.insert(line(2))
        assert victim.line_addr == 1

    def test_mask_index_matches_modulo(self):
        c = tiny_cache(assoc=2, sets=8)
        for addr in (0, 1, 7, 8, 9, 63, 64, 1023):
            assert c.set_index(addr) == addr % c.params.num_sets


class TestRemoveAndTraverse:
    def test_remove_returns_line(self):
        c = tiny_cache()
        c.insert(line(3))
        removed = c.remove(3)
        assert removed.line_addr == 3
        assert c.lookup(3) is None

    def test_remove_missing_returns_none(self):
        assert tiny_cache().remove(9) is None

    def test_dirty_lines_filter(self):
        c = tiny_cache()
        a, b = line(0), line(1)
        a.mark_dirty(2)
        c.insert(a)
        c.insert(b)
        assert [l.line_addr for l in c.dirty_lines()] == [0]

    def test_resident_line_addrs(self):
        c = tiny_cache()
        for la in (0, 1, 2):
            c.insert(line(la))
        assert sorted(c.resident_line_addrs()) == [0, 1, 2]

    def test_clear_visits_and_empties(self):
        c = tiny_cache()
        c.insert(line(0))
        c.insert(line(1))
        seen = []
        n = c.clear(on_evict=lambda l: seen.append(l.line_addr))
        assert n == 2 and sorted(seen) == [0, 1]
        assert c.occupancy == 0


class TestLineID:
    def test_line_id_within_bounds(self):
        c = tiny_cache(assoc=2, sets=4)
        c.insert(line(5))
        lid = c.line_id(5)
        assert 0 <= lid < c.params.num_lines

    def test_line_id_missing_raises(self):
        with pytest.raises(KeyError):
            tiny_cache().line_id(9)
