"""Tests for the functional backing store."""

from repro.mem.memory import MainMemory


def test_unwritten_words_read_zero():
    assert MainMemory().read_word(1234) == 0


def test_write_then_read():
    mem = MainMemory()
    mem.write_word(10, 3.5)
    assert mem.read_word(10) == 3.5


def test_read_line_gathers_words():
    mem = MainMemory()
    base = 4 * 16
    mem.write_word(base + 2, "x")
    got = mem.read_line(4, 16)
    assert got[2] == "x" and got[0] == 0


def test_write_line_words_respects_mask():
    mem = MainMemory()
    data = list(range(16))
    mem.write_line_words(0, 16, data, mask=0b101)
    assert mem.read_word(0) == 0  # written (value 0)
    assert mem.read_word(2) == 2
    assert mem.read_word(1) == 0  # untouched default
    assert mem.touched_words == 2


def test_write_line_words_zero_mask_noop():
    mem = MainMemory()
    mem.write_line_words(0, 16, list(range(16)), mask=0)
    assert mem.touched_words == 0


def test_word_addr_helper():
    assert MainMemory.word_addr(64) == 16
    assert MainMemory.word_addr(67) == 16
