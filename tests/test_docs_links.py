"""Every relative markdown link in README/docs must resolve.

The CI ``docs-links`` step runs this module; it walks the tracked
markdown files, extracts ``[text](target)`` links, and asserts each
non-URL target exists relative to the linking file (anchors are checked
for file existence only).
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

DOCS = sorted(
    [REPO / "README.md", REPO / "EXPERIMENTS.md", REPO / "DESIGN.md",
     REPO / "CHANGES.md", REPO / "ROADMAP.md"]
    + list((REPO / "docs").glob("*.md"))
)

#: ``[label](target)`` — good enough for our hand-written markdown
#: (no images with titles, no reference-style links in these files).
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def relative_links(path: pathlib.Path) -> list[str]:
    links = []
    for target in LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(doc):
    assert doc.exists(), f"indexed doc {doc} is missing"
    broken = []
    for target in relative_links(doc):
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        if not (doc.parent / file_part).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken relative link(s): {broken}"


def test_docs_index_lists_every_doc():
    """docs/README.md must index every markdown file living in docs/."""
    index = (REPO / "docs" / "README.md").read_text()
    for path in (REPO / "docs").glob("*.md"):
        if path.name == "README.md":
            continue
        assert f"({path.name})" in index, (
            f"docs/README.md does not link {path.name}"
        )
