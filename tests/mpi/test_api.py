"""Tests for the on-chip MPI layer (Section IV)."""

import pytest

from repro import Machine, inter_block_machine, intra_block_machine
from repro.common.errors import MPIError
from repro.core.config import (
    INTER_ADDR_L,
    INTER_HCC,
    INTRA_BASE,
    INTRA_BMI,
    INTRA_HCC,
)
from repro.mpi.api import MPIComm


def run_mpi(config, program, *, threads=2, params=None, **comm_kw):
    m = Machine(params or intra_block_machine(4), config, num_threads=threads)
    comm = MPIComm(m, **comm_kw)
    results = {}
    m.spawn_all(lambda ctx: program(ctx, comm, results))
    m.run()
    return results


@pytest.mark.parametrize("config", [INTRA_HCC, INTRA_BASE, INTRA_BMI])
def test_send_recv_roundtrip(config):
    def program(ctx, comm, results):
        if ctx.tid == 0:
            yield from comm.send(ctx, 1, [1.5, 2.5, 3.5])
        else:
            values = yield from comm.recv(ctx, 0)
            results["got"] = values

    results = run_mpi(config, program)
    assert results["got"] == [1.5, 2.5, 3.5]


def test_multiple_messages_in_order():
    def program(ctx, comm, results):
        if ctx.tid == 0:
            for k in range(6):
                yield from comm.send(ctx, 1, [k, k * k])
        else:
            got = []
            for _ in range(6):
                got.append((yield from comm.recv(ctx, 0)))
            results["got"] = got

    results = run_mpi(INTRA_BMI, program)
    assert results["got"] == [[k, k * k] for k in range(6)]


def test_flow_control_beyond_capacity():
    """More messages than ring slots: flow control must kick in, not corrupt."""

    def program(ctx, comm, results):
        n = 10
        if ctx.tid == 0:
            for k in range(n):
                yield from comm.send(ctx, 1, [k])
        else:
            got = []
            for _ in range(n):
                got.append((yield from comm.recv(ctx, 0))[0])
            results["got"] = got

    results = run_mpi(INTRA_BMI, program, capacity=2)
    assert results["got"] == list(range(10))


def test_bidirectional_exchange():
    def program(ctx, comm, results):
        peer = 1 - ctx.tid
        yield from comm.send(ctx, peer, [ctx.tid * 11])
        got = yield from comm.recv(ctx, peer)
        results[ctx.tid] = got[0]

    results = run_mpi(INTRA_BMI, program)
    assert results == {0: 11, 1: 0}


@pytest.mark.parametrize("config", [INTRA_HCC, INTRA_BMI])
def test_broadcast_single_write_many_readers(config):
    def program(ctx, comm, results):
        values = yield from comm.bcast(ctx, 0, [7, 8] if ctx.tid == 0 else None)
        results[ctx.tid] = values

    results = run_mpi(config, program, threads=4)
    assert all(results[t] == [7, 8] for t in range(4))


def test_broadcast_ring_reuse():
    def program(ctx, comm, results):
        got = []
        for rnd in range(5):
            values = yield from comm.bcast(
                ctx, 0, [rnd] if ctx.tid == 0 else None
            )
            got.append(values[0])
        results[ctx.tid] = got

    results = run_mpi(INTRA_BMI, program, threads=3, capacity=2)
    assert all(results[t] == [0, 1, 2, 3, 4] for t in range(3))


def test_isend_wait_irecv():
    def program(ctx, comm, results):
        if ctx.tid == 0:
            handle = yield from comm.isend(ctx, 1, [5])
            assert handle.done
        else:
            handle = comm.irecv(ctx, 0)
            values = yield from comm.wait(ctx, handle)
            results["got"] = values

    results = run_mpi(INTRA_BMI, program)
    assert results["got"] == [5]


@pytest.mark.parametrize("config", [INTER_HCC, INTER_ADDR_L])
def test_hybrid_across_blocks(config):
    """MPI between blocks on the inter-block machine (Model 1's other half).

    The incoherent case is the regression that matters: cross-block slots
    must be posted through the L3 (WB_L3/INV_L2), not just to the block L2.
    """

    def program(ctx, comm, results):
        if ctx.tid == 0:  # block 0
            yield from comm.send(ctx, 3, ["hello"])
        elif ctx.tid == 3:  # block 1
            results["got"] = (yield from comm.recv(ctx, 0))

    results = run_mpi(
        config, program, threads=4, params=inter_block_machine(2, 2)
    )
    assert results["got"] == ["hello"]


@pytest.mark.parametrize("config", [INTER_HCC, INTER_ADDR_L])
def test_cross_block_broadcast(config):
    def program(ctx, comm, results):
        values = yield from comm.bcast(ctx, 0, [1, 2] if ctx.tid == 0 else None)
        results[ctx.tid] = values

    results = run_mpi(
        config, program, threads=4, params=inter_block_machine(2, 2)
    )
    assert all(results[t] == [1, 2] for t in range(4))


def test_message_too_long_rejected():
    def program(ctx, comm, results):
        if ctx.tid == 0:
            with pytest.raises(MPIError):
                yield from comm.send(ctx, 1, list(range(100)))
        yield from ctx.barrier()

    run_mpi(INTRA_BMI, program, max_words=4)


def test_self_send_rejected():
    def program(ctx, comm, results):
        if ctx.tid == 0:
            with pytest.raises(MPIError):
                yield from comm.send(ctx, 0, [1])
        yield from ctx.barrier()

    run_mpi(INTRA_BMI, program)
