"""Direct tests of the reference interpreter (the verification oracle)."""

import pytest

from repro.common.errors import CompilerError
from repro.compiler import ir
from repro.compiler.interp import interpret


def pf(name, dst, src, length, fn=lambda i, v: v, off=0):
    return ir.ParallelFor(
        name,
        length,
        (ir.Assign(ir.Ref(dst, ir.Affine()), (ir.Ref(src, ir.Affine(1, off)),), fn),),
    )


def test_parallel_for_applies_fn_with_index():
    prog = ir.IRProgram(
        "p", {"a": 4, "b": 4},
        (pf("s", "b", "a", 4, fn=lambda i, v: v + i),),
    )
    out = interpret(prog, 2, {"a": [10, 10, 10, 10]})
    assert out["b"] == [10, 11, 12, 13]


def test_loop_repeats_sequentially():
    prog = ir.IRProgram(
        "p", {"a": 4},
        (ir.Loop(3, (pf("inc", "a", "a", 4, fn=lambda i, v: v + 1),)),),
    )
    out = interpret(prog, 2)
    assert out["a"] == [3, 3, 3, 3]


def test_serial_stmt_env_roundtrip():
    serial = ir.SerialStmt(
        "sum",
        reads=(ir.RangeRef("a", 0, 4),),
        writes=(ir.RangeRef("b", 0, 1),),
        fn=lambda env: {"b": [sum(env["a"])]},
    )
    prog = ir.IRProgram("p", {"a": 4, "b": 1}, (serial,))
    out = interpret(prog, 2, {"a": [1, 2, 3, 4]})
    assert out["b"] == [10]


def test_serial_stmt_wrong_length_rejected():
    serial = ir.SerialStmt(
        "bad", reads=(), writes=(ir.RangeRef("b", 0, 2),),
        fn=lambda env: {"b": [1]},
    )
    prog = ir.IRProgram("p", {"b": 2}, (serial,))
    with pytest.raises(CompilerError):
        interpret(prog, 1)


def test_reduce_counter_and_identity():
    reduce = ir.ReduceStmt(
        "sum",
        inputs=(ir.RangeRef("a", 0, 6),),
        result="res",
        width=1,
        partial_fn=lambda t, n, env: [sum(env["a"])],
        combine_fn=lambda c, p: [c[0] + p[0]],
        identity=(100,),  # non-trivial identity must seed each round
    )
    prog = ir.IRProgram("p", {"a": 6, "res": 2}, (ir.Loop(2, (reduce,)),))
    out = interpret(prog, 3, {"a": [1] * 6})
    assert out["res"] == [106, 6]  # identity + sum; 3 threads × 2 rounds


def test_hier_reduce_matches_flat_total():
    hier = ir.HierReduceStmt(
        "hsum",
        inputs=(ir.RangeRef("a", 0, 8),),
        blockpart="bp",
        result="res",
        width=1,
        partial_fn=lambda t, n, env: [sum(env["a"])],
        combine_fn=lambda c, p: [c[0] + p[0]],
    )
    prog = ir.IRProgram("p", {"a": 8, "bp": 32, "res": 2}, (hier,))
    out = interpret(prog, 4, {"a": list(range(8))}, blocks=[[0, 1], [2, 3]])
    assert out["res"][0] == sum(range(8))
    assert out["res"][1] == 2  # one arrival per block
    # Block slots hold the per-block partials (slots are 16-word padded).
    assert out["bp"][0] == sum(range(4))
    assert out["bp"][16] == sum(range(4, 8))


def test_initial_data_validation():
    prog = ir.IRProgram("p", {"a": 4}, (pf("s", "a", "a", 4),))
    with pytest.raises(CompilerError):
        interpret(prog, 1, {"ghost": [1]})
    with pytest.raises(CompilerError):
        interpret(prog, 1, {"a": [1, 2]})


def test_indirect_read_resolution():
    gather = ir.ParallelFor(
        "g",
        4,
        (
            ir.Assign(
                ir.Ref("out", ir.Affine()),
                (ir.Ref("data", ir.Indirect("idx")),),
                lambda i, v: v,
            ),
        ),
    )
    prog = ir.IRProgram("p", {"out": 4, "data": 4, "idx": 4}, (gather,))
    out = interpret(prog, 2, {"data": [10, 20, 30, 40], "idx": [3, 2, 1, 0]})
    assert out["out"] == [40, 30, 20, 10]
