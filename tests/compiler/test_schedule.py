"""Tests for static chunk scheduling."""

import pytest

from repro.common.errors import CompilerError
from repro.compiler.schedule import (
    all_chunks,
    chunk_bounds,
    overlap,
    owner_of_iteration,
)


def test_even_division():
    assert all_chunks(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_remainder_goes_to_leading_threads():
    assert all_chunks(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]


def test_chunks_partition_the_range():
    for length, n in [(7, 3), (16, 5), (100, 16), (3, 8)]:
        covered = []
        for lo, hi in all_chunks(length, n):
            covered.extend(range(lo, hi))
        assert covered == list(range(length))


def test_owner_is_inverse_of_chunks():
    for length, n in [(10, 4), (33, 16), (5, 5)]:
        for tid, (lo, hi) in enumerate(all_chunks(length, n)):
            for i in range(lo, hi):
                assert owner_of_iteration(length, n, i) == tid


def test_owner_out_of_range():
    with pytest.raises(CompilerError):
        owner_of_iteration(10, 4, 10)


def test_bad_tid():
    with pytest.raises(CompilerError):
        chunk_bounds(10, 4, 4)
    with pytest.raises(CompilerError):
        chunk_bounds(10, 0, 0)


def test_overlap():
    assert overlap((0, 5), (3, 8)) == (3, 5)
    assert overlap((0, 3), (3, 8)) is None
    assert overlap((4, 6), (0, 10)) == (4, 6)
