"""Tests for the Model-2 executor, interpreter agreement, and the inspector."""

import pytest

from repro import Machine, inter_block_machine
from repro.common.errors import CompilerError
from repro.compiler import ir
from repro.compiler.executor import ModelTwoRunner
from repro.compiler.interp import interpret
from repro.core.config import INTER_CONFIGS, INTER_ADDR_L, INTER_HCC
from repro.noc.placement import Placement


def neighbor_exchange_program(n=16, iters=2):
    """b = shift(a); a = b — classic neighbor communication."""
    fwd = ir.ParallelFor(
        "fwd",
        n - 1,
        (
            ir.Assign(
                ir.Ref("b", ir.Affine()),
                (ir.Ref("a", ir.Affine(1, 1)),),
                lambda i, v: v + 1,
            ),
        ),
    )
    bwd = ir.ParallelFor(
        "bwd",
        n - 1,
        (
            ir.Assign(
                ir.Ref("a", ir.Affine()),
                (ir.Ref("b", ir.Affine()),),
                lambda i, v: v,
            ),
        ),
    )
    return ir.IRProgram("shift", {"a": n, "b": n}, (ir.Loop(iters, (fwd, bwd)),))


def run_program(program, config, preloads=None, nthreads=4):
    machine = Machine(inter_block_machine(2, 2), config, num_threads=nthreads)
    runner = ModelTwoRunner(machine, program)
    for name, values in (preloads or {}).items():
        runner.preload(name, values)
    runner.spawn_all()
    machine.run()
    return runner


class TestExecutorMatchesInterpreter:
    @pytest.mark.parametrize("config", INTER_CONFIGS, ids=lambda c: c.name)
    def test_neighbor_exchange(self, config):
        program = neighbor_exchange_program()
        pre = {"a": list(range(16))}
        runner = run_program(program, config, pre)
        want = interpret(program, 4, pre)
        assert runner.result("a") == want["a"]
        assert runner.result("b") == want["b"]

    @pytest.mark.parametrize("config", INTER_CONFIGS, ids=lambda c: c.name)
    def test_reduction_with_counter_reset(self, config):
        reduce = ir.ReduceStmt(
            "sum",
            inputs=(ir.RangeRef("a", 0, 8),),
            result="res",
            width=1,
            partial_fn=lambda t, n, env: [sum(env["a"])],
            combine_fn=lambda c, p: [c[0] + p[0]],
            identity=(0,),
        )
        program = ir.IRProgram(
            "r", {"a": 8, "res": 2}, (ir.Loop(3, (reduce,)),)
        )
        pre = {"a": [1] * 8}
        runner = run_program(program, config, pre)
        # Each round resets to identity: the final sum is 8, not 24.
        assert runner.result("res")[0] == 8
        assert runner.result("res")[1] == 12  # 4 threads × 3 rounds

    @pytest.mark.parametrize("config", INTER_CONFIGS, ids=lambda c: c.name)
    def test_serial_section(self, config):
        serial = ir.SerialStmt(
            "prefix",
            reads=(ir.RangeRef("a", 0, 4),),
            writes=(ir.RangeRef("cum", 0, 4),),
            fn=lambda env: {
                "cum": [sum(env["a"][:k]) for k in range(4)]
            },
        )
        use = ir.ParallelFor(
            "use",
            4,
            (
                ir.Assign(
                    ir.Ref("out", ir.Affine()),
                    (ir.Ref("cum", ir.Affine()),),
                    lambda i, c: c * 10,
                ),
            ),
        )
        program = ir.IRProgram(
            "s", {"a": 4, "cum": 4, "out": 4}, (serial, use)
        )
        pre = {"a": [1, 2, 3, 4]}
        runner = run_program(program, config, pre)
        assert runner.result("out") == [0, 10, 30, 60]


class TestInspector:
    def _gather_program(self, n=8):
        producer = ir.ParallelFor(
            "mk",
            n,
            (
                ir.Assign(
                    ir.Ref("p", ir.Affine()),
                    (ir.Ref("r", ir.Affine()),),
                    lambda i, v: v * 2,
                ),
            ),
        )
        gather = ir.ParallelFor(
            "gather",
            n,
            (
                ir.Assign(
                    ir.Ref("q", ir.Affine()),
                    (ir.Ref("p", ir.Indirect("col")),),
                    lambda i, v: v,
                ),
            ),
        )
        return ir.IRProgram(
            "g", {"p": n, "q": n, "r": n, "col": n},
            (ir.Loop(2, (producer, gather)),),
        )

    @pytest.mark.parametrize("config", INTER_CONFIGS, ids=lambda c: c.name)
    def test_gather_correct_under_all_modes(self, config):
        program = self._gather_program()
        pre = {"col": [7, 0, 3, 1, 6, 2, 5, 4], "r": list(range(8))}
        runner = run_program(program, config, pre)
        want = interpret(program, 4, pre)
        assert runner.result("q") == want["q"]

    def test_inspector_runs_once_and_writes_conflicts(self):
        program = self._gather_program()
        pre = {"col": [7, 0, 3, 1, 6, 2, 5, 4], "r": list(range(8))}
        runner = run_program(program, INTER_ADDR_L, pre)
        assert runner._inspector_cache  # populated on first execution
        # conflict array records remote writers only.
        sid = next(iter(runner.plan.irregular))
        conflicts = runner.machine.read_array(
            runner._conflict_arrays[(sid, "p")]
        )
        # Element 7 (read by thread 0 via col[0]) is produced by thread 3.
        assert conflicts[7] == 3
        # Self-produced elements stay 0 (never marked).
        assert conflicts[1] == 0

    def test_level_adaptive_localizes_some_invs(self):
        program = self._gather_program()
        pre = {"col": [7, 0, 3, 1, 6, 2, 5, 4], "r": list(range(8))}
        runner = run_program(program, INTER_ADDR_L, pre)
        stats = runner.machine.stats
        # col has both same-block and cross-block conflicts: both kinds.
        assert stats.local_inv_lines > 0
        assert stats.global_inv_lines > 0


class TestRunnerValidation:
    def test_reduction_result_must_have_counter_slot(self):
        reduce = ir.ReduceStmt(
            "sum",
            inputs=(ir.RangeRef("a", 0, 4),),
            result="res",
            width=1,
            partial_fn=lambda t, n, env: [sum(env["a"])],
            combine_fn=lambda c, p: [c[0] + p[0]],
        )
        program = ir.IRProgram("r", {"a": 4, "res": 1}, (reduce,))
        machine = Machine(inter_block_machine(2, 2), INTER_HCC, num_threads=4)
        with pytest.raises(CompilerError):
            ModelTwoRunner(machine, program)

    def test_preload_length_checked(self):
        program = neighbor_exchange_program()
        machine = Machine(inter_block_machine(2, 2), INTER_HCC, num_threads=4)
        runner = ModelTwoRunner(machine, program)
        with pytest.raises(CompilerError):
            runner.preload("a", [1, 2])


class TestPlacementIndependence:
    def test_same_results_under_permuted_placement(self):
        """Level-adaptive programs run correctly under any thread placement."""
        program = neighbor_exchange_program()
        pre = {"a": list(range(16))}
        want = interpret(program, 4, pre)
        params = inter_block_machine(2, 2)
        for cores in [(0, 1, 2, 3), (3, 2, 1, 0), (0, 2, 1, 3)]:
            machine = Machine(
                params,
                INTER_ADDR_L,
                placement=Placement(params, cores),
            )
            runner = ModelTwoRunner(machine, program)
            runner.preload("a", pre["a"])
            runner.spawn_all()
            machine.run()
            assert runner.result("a") == want["a"], cores
