"""Tests for the Model-2 loop-nest IR."""

import pytest

from repro.common.errors import CompilerError
from repro.compiler import ir


class TestAffine:
    def test_at_and_image(self):
        idx = ir.Affine(1, 3)
        assert idx.at(5) == 8
        assert idx.image(0, 10) == (3, 13)

    def test_strided_image_is_hull(self):
        idx = ir.Affine(4, 1)
        assert idx.image(2, 5) == (9, 18)  # covers {9, 13, 17}

    def test_empty_iteration_range(self):
        assert ir.Affine(1, 3).image(5, 5) == (3, 3)

    def test_non_positive_stride_rejected(self):
        with pytest.raises(CompilerError):
            ir.Affine(0, 0).image(0, 4)
        with pytest.raises(CompilerError):
            ir.Affine(-1, 0).image(0, 4)


class TestStatements:
    def test_indirect_write_rejected(self):
        with pytest.raises(CompilerError):
            ir.Assign(
                lhs=ir.Ref("a", ir.Indirect("idx")),
                rhs=(),
                fn=lambda i: 0,
            )

    def test_parallel_for_validation(self):
        body = (ir.Assign(ir.Ref("a", ir.Affine()), (), lambda i: i),)
        with pytest.raises(CompilerError):
            ir.ParallelFor("p", 0, body)
        with pytest.raises(CompilerError):
            ir.ParallelFor("p", 4, ())

    def test_parallel_for_array_sets(self):
        pf = ir.ParallelFor(
            "p",
            4,
            (
                ir.Assign(
                    ir.Ref("out", ir.Affine()),
                    (ir.Ref("a", ir.Affine()), ir.Ref("b", ir.Affine(1, 1))),
                    lambda i, a, b: a + b,
                ),
            ),
        )
        assert pf.written_arrays() == {"out"}
        assert pf.read_arrays() == {"a", "b"}

    def test_range_ref_validation(self):
        with pytest.raises(CompilerError):
            ir.RangeRef("a", 3, 3)
        with pytest.raises(CompilerError):
            ir.RangeRef("a", -1, 2)

    def test_reduce_stmt_validation(self):
        with pytest.raises(CompilerError):
            ir.ReduceStmt(
                "r", (), "res", 0, lambda t, n, e: [], lambda c, p: c
            )
        with pytest.raises(CompilerError):
            ir.ReduceStmt(
                "r", (), "res", 2, lambda t, n, e: [], lambda c, p: c,
                identity=(0,),
            )

    def test_reduce_identity_defaults_to_zeros(self):
        r = ir.ReduceStmt(
            "r", (), "res", 3, lambda t, n, e: [], lambda c, p: c
        )
        assert r.identity_values() == [0, 0, 0]

    def test_loop_validation(self):
        body = (
            ir.ParallelFor(
                "p", 2, (ir.Assign(ir.Ref("a", ir.Affine()), (), lambda i: i),)
            ),
        )
        with pytest.raises(CompilerError):
            ir.Loop(0, body)
        with pytest.raises(CompilerError):
            ir.Loop(2, ())


class TestProgram:
    def test_undeclared_array_rejected(self):
        pf = ir.ParallelFor(
            "p", 2, (ir.Assign(ir.Ref("ghost", ir.Affine()), (), lambda i: i),)
        )
        with pytest.raises(CompilerError):
            ir.IRProgram("bad", {"a": 4}, (pf,))

    def test_indirect_index_array_must_be_declared(self):
        pf = ir.ParallelFor(
            "p",
            2,
            (
                ir.Assign(
                    ir.Ref("a", ir.Affine()),
                    (ir.Ref("a", ir.Indirect("ghost")),),
                    lambda i, v: v,
                ),
            ),
        )
        with pytest.raises(CompilerError):
            ir.IRProgram("bad", {"a": 4}, (pf,))

    def test_iter_stmts_flattens_loops(self):
        pf = ir.ParallelFor(
            "p", 2, (ir.Assign(ir.Ref("a", ir.Affine()), (), lambda i: i),)
        )
        prog = ir.IRProgram("ok", {"a": 4}, (ir.Loop(3, (pf,)),))
        assert [s.name for s in ir.iter_stmts(prog.stmts)] == ["p"]
