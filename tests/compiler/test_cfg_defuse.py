"""Tests for CFG reachability and DEF-USE producer-consumer extraction."""

from repro.compiler import ir
from repro.compiler.cfg import CFG
from repro.compiler.defuse import analyze


def copy_loop(name, dst, src, length, src_off=0):
    return ir.ParallelFor(
        name,
        length,
        (
            ir.Assign(
                ir.Ref(dst, ir.Affine()),
                (ir.Ref(src, ir.Affine(1, src_off)),),
                lambda i, v: v,
            ),
        ),
    )


class TestCFG:
    def test_sequential_reachability(self):
        prog = ir.IRProgram(
            "p",
            {"a": 8, "b": 8, "c": 8},
            (copy_loop("s1", "b", "a", 8), copy_loop("s2", "c", "b", 8)),
        )
        cfg = CFG(prog)
        assert cfg.reachable_consumers(0, "b") == [1]
        assert cfg.reachable_consumers(1, "c") == []

    def test_loop_back_edge_makes_self_reachable(self):
        prog = ir.IRProgram(
            "p",
            {"a": 8, "b": 8},
            (
                ir.Loop(
                    3,
                    (copy_loop("fwd", "b", "a", 8), copy_loop("bwd", "a", "b", 8)),
                ),
            ),
        )
        cfg = CFG(prog)
        # "bwd" writes a, consumed by "fwd" next iteration via the back edge.
        assert 0 in cfg.reachable_consumers(1, "a")

    def test_complete_kill_stops_propagation(self):
        prog = ir.IRProgram(
            "p",
            {"a": 8, "b": 8, "c": 8, "d": 8},
            (
                copy_loop("s1", "b", "a", 8),  # produces b
                copy_loop("kill", "b", "c", 8),  # completely redefines b
                copy_loop("s3", "d", "b", 8),  # reads b (from kill, not s1)
            ),
        )
        cfg = CFG(prog)
        reach = cfg.reachable_consumers(0, "b")
        # The killer itself receives the query; the reader after it does not.
        assert 1 in reach and 2 not in reach

    def test_partial_writer_does_not_kill(self):
        partial = ir.ParallelFor(
            "partial",
            4,  # writes only b[0:4] of 8
            (
                ir.Assign(
                    ir.Ref("b", ir.Affine()),
                    (ir.Ref("c", ir.Affine()),),
                    lambda i, v: v,
                ),
            ),
        )
        prog = ir.IRProgram(
            "p",
            {"a": 8, "b": 8, "c": 8, "d": 8},
            (copy_loop("s1", "b", "a", 8), partial, copy_loop("s3", "d", "b", 8)),
        )
        cfg = CFG(prog)
        assert 2 in cfg.reachable_consumers(0, "b")


class TestDefUse:
    def test_shifted_read_communicates_with_neighbor(self):
        """dst[i] = src[i+1]: thread t reads the first element of t+1's chunk."""
        prog = ir.IRProgram(
            "p",
            {"a": 8, "b": 9},
            (
                ir.Loop(
                    2,
                    (
                        copy_loop("w", "b", "a", 8),  # writes b[0:8]
                        ir.ParallelFor(
                            "r",
                            8,
                            (
                                ir.Assign(
                                    ir.Ref("a", ir.Affine()),
                                    (ir.Ref("b", ir.Affine(1, 1)),),
                                    lambda i, v: v,
                                ),
                            ),
                        ),
                    ),
                )
            ,),
        )
        plan = analyze(prog, nthreads=4)
        # Thread 0 (iterations 0-1) reads b[1:3]; b[2] produced by thread 1.
        invs = plan.invs(1, 0)
        assert any(d.array == "b" and d.prod == 1 for d in invs)
        wbs = plan.wbs(0, 1)
        assert any(d.array == "b" and d.cons == frozenset({0}) for d in wbs)

    def test_aligned_chunks_no_communication(self):
        """dst[i] = src[i] with matching chunks: everything is thread-local."""
        prog = ir.IRProgram(
            "p",
            {"a": 8, "b": 8},
            (
                ir.Loop(
                    2, (copy_loop("w", "b", "a", 8), copy_loop("r", "a", "b", 8))
                ),
            ),
        )
        plan = analyze(prog, nthreads=4)
        assert not plan.wb_after
        assert not plan.inv_before

    def test_serial_broadcast_to_parallel(self):
        serial = ir.SerialStmt(
            "init",
            reads=(),
            writes=(ir.RangeRef("coef", 0, 1),),
            fn=lambda env: {"coef": [2.0]},
        )
        consumer = ir.ParallelFor(
            "use",
            8,
            (
                ir.Assign(
                    ir.Ref("out", ir.Affine()),
                    (ir.Ref("coef", ir.Fixed(0)),),
                    lambda i, c: c,
                ),
            ),
        )
        prog = ir.IRProgram("p", {"coef": 1, "out": 8}, (serial, consumer))
        plan = analyze(prog, nthreads=4)
        # Threads 1-3 invalidate against producer thread 0; thread 0 is local.
        for t in (1, 2, 3):
            assert any(d.prod == 0 for d in plan.invs(1, t))
        assert plan.invs(1, 0) == []
        # Thread 0's WB serves consumers 1..3.
        wbs = plan.wbs(0, 0)
        assert len(wbs) == 1 and wbs[0].cons == frozenset({1, 2, 3})

    def test_reduction_result_is_globally_instrumented(self):
        reduce = ir.ReduceStmt(
            "sum",
            inputs=(ir.RangeRef("a", 0, 8),),
            result="res",
            width=1,
            partial_fn=lambda t, n, env: [sum(env["a"])],
            combine_fn=lambda c, p: [c[0] + p[0]],
        )
        consumer = ir.ParallelFor(
            "use",
            8,
            (
                ir.Assign(
                    ir.Ref("out", ir.Affine()),
                    (ir.Ref("res", ir.Fixed(0)),),
                    lambda i, r: r,
                ),
            ),
        )
        prog = ir.IRProgram(
            "p", {"a": 8, "res": 2, "out": 8}, (reduce, consumer)
        )
        plan = analyze(prog, nthreads=4)
        for t in range(4):
            assert any(
                d.array == "res" and d.prod is None for d in plan.invs(1, t)
            )

    def test_irregular_read_registers_inspector_work(self):
        producer = copy_loop("mk_p", "p", "r", 8)
        consumer = ir.ParallelFor(
            "spmv",
            8,
            (
                ir.Assign(
                    ir.Ref("q", ir.Affine()),
                    (ir.Ref("p", ir.Indirect("col")),),
                    lambda i, v: v,
                ),
            ),
        )
        prog = ir.IRProgram(
            "p",
            {"p": 8, "q": 8, "r": 8, "col": 8},
            (ir.Loop(2, (producer, consumer)),),
        )
        plan = analyze(prog, nthreads=4)
        irrs = plan.irregular.get(1, [])
        assert len(irrs) == 1
        irr = irrs[0]
        assert irr.array == "p" and irr.index_array == "col"
        assert not irr.producer_serial and irr.producer_length == 8
        # The producer writes back its whole chunk globally (cons=None).
        for t in range(4):
            assert any(d.cons is None for d in plan.wbs(0, t))

    def test_directive_coalescing_merges_adjacent(self):
        """Two rhs refs with adjacent images merge into one directive."""
        prog = ir.IRProgram(
            "p",
            {"a": 10, "b": 12},
            (
                ir.Loop(
                    2,
                    (
                        copy_loop("w", "b", "a", 10),
                        ir.ParallelFor(
                            "r",
                            10,
                            (
                                ir.Assign(
                                    ir.Ref("a", ir.Affine()),
                                    (
                                        ir.Ref("b", ir.Affine(1, 1)),
                                        ir.Ref("b", ir.Affine(1, 2)),
                                    ),
                                    lambda i, x, y: x + y,
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        )
        plan = analyze(prog, nthreads=5)
        for t in range(5):
            for d in plan.invs(1, t):
                pass  # directives exist and are coalesced
            seen = plan.invs(1, t)
            # No two directives for the same producer overlap.
            for i, d1 in enumerate(seen):
                for d2 in seen[i + 1:]:
                    if d1.array == d2.array and d1.prod == d2.prod:
                        assert d1.hi <= d2.lo or d2.hi <= d1.lo
