"""Tests for the discrete-event kernel."""

import pytest

from repro.common.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine


def test_time_ordering():
    eng = Engine()
    seen = []
    eng.schedule(10, lambda: seen.append("b"))
    eng.schedule(5, lambda: seen.append("a"))
    eng.schedule(20, lambda: seen.append("c"))
    assert eng.run() == 20
    assert seen == ["a", "b", "c"]


def test_fifo_among_equal_times():
    eng = Engine()
    seen = []
    for tag in ("first", "second", "third"):
        eng.schedule(7, lambda t=tag: seen.append(t))
    eng.run()
    assert seen == ["first", "second", "third"]


def test_nested_scheduling_relative_to_now():
    eng = Engine()
    times = []

    def outer():
        times.append(eng.now)
        eng.schedule(5, lambda: times.append(eng.now))

    eng.schedule(10, outer)
    assert eng.run() == 15
    assert times == [10, 15]


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(-1, lambda: None)


def test_float_delay_truncates_consistently():
    """Regression: delay is coerced with int() *before* the negativity check.

    Scaled latencies can produce float delays like 1.5; they must truncate
    toward zero, and a fractional negative like -0.5 becomes a legal delay
    of 0 instead of raising.
    """
    eng = Engine()
    times = []
    eng.schedule(1.5, lambda: times.append(eng.now))
    assert eng.run() == 1
    assert times == [1]

    eng2 = Engine()
    eng2.schedule(-0.5, lambda: times.append(eng2.now))  # int(-0.5) == 0
    assert eng2.run() == 0
    with pytest.raises(SimulationError):
        eng2.schedule(-1.0, lambda: None)  # int(-1.0) == -1 still rejected


def test_non_numeric_delay_fails_loudly():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule("soon", lambda: None)
    with pytest.raises(TypeError):
        eng.schedule(None, lambda: None)


def test_deadlock_detection():
    eng = Engine()
    eng.register_entity()  # never finishes, no events
    with pytest.raises(DeadlockError):
        eng.run()


def test_entity_lifecycle_clean_exit():
    eng = Engine()
    eng.register_entity()
    eng.schedule(3, eng.entity_finished)
    assert eng.run() == 3
    assert eng.live_entities == 0


def test_entity_finished_without_register():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.entity_finished()


def test_max_cycles_guard():
    eng = Engine()
    eng.schedule(1000, lambda: None)
    with pytest.raises(SimulationError):
        eng.run(max_cycles=500)


def test_empty_run_returns_zero():
    assert Engine().run() == 0
