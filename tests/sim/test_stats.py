"""Tests for stall/traffic accounting."""

from repro.sim.stats import CoreStats, MachineStats, StallCat, TrafficCat


def test_stall_categories_match_figure9():
    assert {c.value for c in StallCat} == {
        "inv_stall",
        "wb_stall",
        "lock_stall",
        "barrier_stall",
        "rest",
    }


def test_traffic_categories_cover_figure10_plus_sync():
    assert {c.value for c in TrafficCat} == {
        "memory",
        "linefill",
        "writeback",
        "invalidation",
        "sync",
    }


def test_core_stats_accumulation():
    cs = CoreStats()
    cs.add_stall(StallCat.WB, 10)
    cs.add_stall(StallCat.WB, 5)
    cs.add_stall(StallCat.REST, 7)
    assert cs.stalls[StallCat.WB] == 15
    assert cs.total_cycles == 22


def test_machine_stats_traffic_and_total():
    ms = MachineStats.for_cores(2)
    ms.add_traffic(TrafficCat.LINEFILL, 5)
    ms.add_traffic(TrafficCat.MEMORY, 3)
    assert ms.total_flits == 8


def test_traffic_freeze_stops_accounting():
    ms = MachineStats.for_cores(1)
    ms.add_traffic(TrafficCat.WRITEBACK, 4)
    ms.frozen = True
    ms.add_traffic(TrafficCat.WRITEBACK, 100)
    assert ms.traffic[TrafficCat.WRITEBACK] == 4


def test_breakdown_scales_to_exec_time():
    ms = MachineStats.for_cores(2)
    ms.per_core[0].add_stall(StallCat.REST, 80)
    ms.per_core[0].add_stall(StallCat.WB, 20)
    ms.per_core[1].add_stall(StallCat.REST, 100)
    ms.exec_time = 200
    b = ms.breakdown()
    # Bars sum to exec_time, split proportionally to mean per-core cycles.
    assert abs(sum(b.values()) - 200) < 1e-9
    assert b["wb_stall"] > 0


def test_breakdown_empty_run():
    ms = MachineStats.for_cores(1)
    assert all(v == 0.0 for v in ms.breakdown().values())


def test_summary_keys_stable():
    ms = MachineStats.for_cores(1)
    s = ms.summary()
    for key in ("exec_time", "loads", "stores", "l1_hits", "l1_misses",
                "wb_ops", "inv_ops", "global_wb_lines", "global_inv_lines",
                "dir_invalidations", "total_flits"):
        assert key in s


def test_stall_total_sums_cores():
    ms = MachineStats.for_cores(3)
    for core in ms.per_core:
        core.add_stall(StallCat.LOCK, 5)
    assert ms.stall_total(StallCat.LOCK) == 15
