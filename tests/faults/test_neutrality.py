"""The fault subsystem must be invisible until a plan is armed.

Acceptance bar mirroring ``tests/obs/test_neutrality.py``: with no
injector, every hook point is one pointer comparison and all statistics
are bit-identical to a pre-fault-subsystem build (pinned by golden stats
JSON); with an *empty* plan armed, the hooks run but roll nothing, and the
numbers still do not move.

To regenerate the goldens after an intentional timing-model change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/faults/test_neutrality.py
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core.config import INTER_ADDR_L, INTRA_BMI, INTRA_HCC
from repro.eval.runner import run_inter, run_intra, run_litmus
from repro.faults.model import FaultPlan

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

INTRA_KW = dict(num_threads=4, scale=0.5)
INTER_KW = dict(num_blocks=2, cores_per_block=2, scale=0.25)


def check_golden_json(name: str, payload: dict) -> None:
    rendered = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden file {path} missing — run with REPRO_UPDATE_GOLDEN=1"
    )
    assert rendered == path.read_text(), (
        f"{name} drifted from its golden copy: an unarmed run no longer "
        "reproduces the pre-fault-subsystem statistics bit-for-bit"
    )


def test_empty_plan_is_bit_identical_intra():
    plain = run_intra("volrend", INTRA_BMI, **INTRA_KW)
    armed = run_intra(
        "volrend", INTRA_BMI, faults=FaultPlan(name="empty"), **INTRA_KW
    )
    assert armed.stats.to_dict() == plain.stats.to_dict()
    assert armed.faults["total_fires"] == 0


def test_empty_plan_is_bit_identical_inter():
    plain = run_inter("ep", INTER_ADDR_L, **INTER_KW)
    armed = run_inter(
        "ep", INTER_ADDR_L, faults=FaultPlan(name="empty"), **INTER_KW
    )
    assert armed.stats.to_dict() == plain.stats.to_dict()


def test_empty_plan_is_bit_identical_litmus():
    plain = run_litmus("lock_counter", INTRA_BMI, memory_digest=True)
    armed = run_litmus(
        "lock_counter", INTRA_BMI, faults=FaultPlan(name="empty"),
        memory_digest=True,
    )
    assert armed.stats.to_dict() == plain.stats.to_dict()
    assert armed.memory_digest == plain.memory_digest


def test_unarmed_intra_stats_match_golden():
    result = run_intra("volrend", INTRA_BMI, **INTRA_KW)
    check_golden_json("volrend_bmi_stats.json", result.stats.to_dict())


def test_unarmed_intra_hcc_stats_match_golden():
    result = run_intra("volrend", INTRA_HCC, **INTRA_KW)
    check_golden_json("volrend_hcc_stats.json", result.stats.to_dict())


def test_unarmed_inter_stats_match_golden():
    result = run_inter("ep", INTER_ADDR_L, **INTER_KW)
    check_golden_json("ep_addrl_stats.json", result.stats.to_dict())
