"""CLI-level tests for ``repro chaos``."""

from __future__ import annotations

import json

from repro.cli import main


def test_chaos_list_faults(capsys):
    assert main(["chaos", "--list-faults"]) == 0
    out = capsys.readouterr().out
    for kind in ("meb_overflow", "ieb_displace", "threadmap_displace",
                 "wbuf_stall", "noc_jitter", "noc_link_down", "mem_wb_delay"):
        assert kind in out


def test_chaos_small_run_exits_zero(capsys):
    code = main(
        ["chaos", "--workload", "mp_flag", "--plans", "2", "--seed", "3",
         "--jobs", "1", "--no-cache"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "mp_flag" in out


def test_chaos_json_payload(capsys):
    code = main(
        ["chaos", "--workload", "lock_counter", "--plans", "2", "--seed", "3",
         "--jobs", "1", "--no-cache", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert payload["plans"] == 2
    assert payload["divergences"] == {}
    assert set(payload["kinds"]) == {
        "meb_overflow", "ieb_displace", "threadmap_displace", "wbuf_stall",
        "noc_jitter", "noc_link_down", "mem_wb_delay",
    }


def test_chaos_fault_filter_limits_kinds(capsys):
    code = main(
        ["chaos", "--workload", "mp_flag", "--plans", "2", "--seed", "3",
         "--faults", "noc_jitter,wbuf_stall", "--jobs", "1", "--no-cache",
         "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    fired = {k for k, v in payload["kinds"].items() if v["fires"]}
    assert fired <= {"noc_jitter", "wbuf_stall"}


def test_chaos_unknown_workload_is_usage_error(capsys):
    assert main(["chaos", "--workload", "no_such_thing", "--plans", "1"]) == 2
    assert "unknown chaos workload" in capsys.readouterr().err


def test_chaos_unknown_fault_kind_is_usage_error(capsys):
    code = main(
        ["chaos", "--workload", "mp_flag", "--faults", "cosmic_ray"]
    )
    assert code == 2
    assert "--list-faults" in capsys.readouterr().err


def test_chaos_reports_a_divergence(capsys):
    # Explicitly naming the broken handoff kernel gives the runner a target
    # whose B+M+I memory already differs from the HCC oracle.
    code = main(
        ["chaos", "--workload", "lock_handoff_three_threads_broken",
         "--plans", "1", "--seed", "3", "--jobs", "1", "--no-cache",
         "--json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert "litmus:lock_handoff_three_threads_broken" in payload["divergences"]
