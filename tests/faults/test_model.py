"""FaultSpec/FaultPlan: validation, canonical serde, seeded generation."""

import pytest

from repro.common.errors import ConfigError
from repro.faults.model import (
    FAULT_CATALOG,
    STRUCTURAL_KINDS,
    TIMING_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    random_plans,
)


def test_catalog_covers_every_kind():
    assert set(FAULT_CATALOG) == set(FaultKind)
    assert STRUCTURAL_KINDS | TIMING_KINDS == frozenset(FaultKind)
    assert not STRUCTURAL_KINDS & TIMING_KINDS


@pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
def test_spec_rejects_bad_rate(rate):
    with pytest.raises(ConfigError):
        FaultSpec(kind=FaultKind.NOC_JITTER, rate=rate)


def test_spec_rejects_bad_magnitude():
    with pytest.raises(ConfigError):
        FaultSpec(kind=FaultKind.NOC_JITTER, magnitude=0)


def test_plan_rejects_duplicate_kinds():
    spec = FaultSpec(kind=FaultKind.WBUF_STALL)
    with pytest.raises(ConfigError):
        FaultPlan(name="dup", specs=(spec, spec))


def test_plan_serde_round_trip():
    plan = FaultPlan(
        name="p",
        seed=99,
        specs=(
            FaultSpec(kind=FaultKind.MEB_OVERFLOW, rate=0.25, cores=(2, 0)),
            FaultSpec(kind=FaultKind.NOC_JITTER, magnitude=12,
                      window=(10, 500)),
        ),
    )
    back = FaultPlan.from_dict(plan.to_dict())
    assert back == plan
    assert back.digest() == plan.digest()
    # cores are canonicalized sorted, so equivalent inputs hash identically
    assert back.specs[0].cores == (0, 2)


def test_digest_is_sensitive_to_every_field():
    base = FaultPlan(
        name="p", seed=1, specs=(FaultSpec(kind=FaultKind.WBUF_STALL),)
    )
    variants = [
        FaultPlan(name="p", seed=2, specs=base.specs),
        FaultPlan(name="p", seed=1,
                  specs=(FaultSpec(kind=FaultKind.WBUF_STALL, rate=0.1),)),
        FaultPlan(name="p", seed=1,
                  specs=(FaultSpec(kind=FaultKind.WBUF_STALL, magnitude=9),)),
        FaultPlan(name="p", seed=1,
                  specs=(FaultSpec(kind=FaultKind.NOC_JITTER),)),
    ]
    digests = {base.digest()} | {v.digest() for v in variants}
    assert len(digests) == len(variants) + 1


def test_random_plans_reproduce_from_seed():
    a = random_plans(5, seed=7)
    b = random_plans(5, seed=7)
    assert a == b
    c = random_plans(5, seed=8)
    assert a != c
    assert len({p.digest() for p in a}) == 5


def test_random_plans_respect_kind_filter():
    kinds = [FaultKind.NOC_JITTER, FaultKind.WBUF_STALL]
    for plan in random_plans(8, seed=3, kinds=kinds):
        assert plan.specs  # never an empty plan
        assert set(plan.kinds) <= set(kinds)
