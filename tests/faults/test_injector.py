"""FaultInjector: hooks, determinism, predicates, freeze, observability."""

import pytest

from repro.core.config import INTRA_BMI
from repro.eval.runner import run_litmus
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultKind, FaultPlan, FaultSpec
from repro.obs.metrics import Metrics
from repro.obs.schema import validate_event
from repro.obs.trace import Tracer


def _plan(**spec_kw):
    return FaultPlan(name="t", seed=11, specs=(FaultSpec(**spec_kw),))


def test_timing_draws_are_bounded_and_deterministic():
    plan = _plan(kind=FaultKind.WBUF_STALL, rate=1.0, magnitude=5)
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    draws_a = [a.wbuf_stall(0) for _ in range(50)]
    draws_b = [b.wbuf_stall(0) for _ in range(50)]
    assert draws_a == draws_b
    assert all(1 <= d <= 5 for d in draws_a)
    assert a.total_fires == 50


def test_structural_hooks_fire_as_booleans():
    inj = FaultInjector(_plan(kind=FaultKind.MEB_OVERFLOW, rate=1.0))
    assert inj.meb_overflow(0) is True
    assert inj.ieb_displace(0) is False  # kind not armed
    assert inj.threadmap_displace(0) is False


def test_core_filter_restricts_firing():
    inj = FaultInjector(
        _plan(kind=FaultKind.WBUF_STALL, rate=1.0, cores=(2,))
    )
    assert inj.wbuf_stall(0) == 0
    assert inj.wbuf_stall(2) > 0


def test_window_restricts_firing_to_opportunity_indices():
    inj = FaultInjector(
        _plan(kind=FaultKind.WBUF_STALL, rate=1.0, window=(2, 4))
    )
    fired = [inj.wbuf_stall(0) > 0 for _ in range(6)]
    assert fired == [False, False, True, True, False, False]


def test_freeze_stops_everything():
    plan = FaultPlan(
        name="t",
        seed=11,
        specs=(
            FaultSpec(kind=FaultKind.WBUF_STALL, rate=1.0),
            FaultSpec(kind=FaultKind.MEM_WB_DELAY, rate=1.0),
        ),
    )
    inj = FaultInjector(plan)
    inj.mem_writeback()
    assert inj.wbuf_stall(0) > 0
    inj.freeze()
    assert inj.wbuf_stall(0) == 0
    # pending memory delay is dropped, not carried into verification reads
    assert inj.take_mem_delay() == 0
    snap = inj.snapshot()
    assert snap["total_fires"] == 2


def test_mem_delay_accrues_until_taken():
    inj = FaultInjector(_plan(kind=FaultKind.MEM_WB_DELAY, rate=1.0,
                              magnitude=4))
    inj.mem_writeback()
    inj.mem_writeback()
    delay = inj.take_mem_delay()
    assert 2 <= delay <= 8
    assert inj.take_mem_delay() == 0


def test_noc_link_down_adds_a_detour():
    inj = FaultInjector(_plan(kind=FaultKind.NOC_LINK_DOWN, rate=1.0))
    extra = inj.noc_delay(3, cycles_per_hop=2)
    assert extra == 4  # two detour hops at the mesh's own per-hop cost


def test_snapshot_shape():
    plan = _plan(kind=FaultKind.NOC_JITTER, rate=0.5, magnitude=3)
    inj = FaultInjector(plan)
    for _ in range(20):
        inj.noc_delay(1, cycles_per_hop=1)
    snap = inj.snapshot()
    assert snap["plan"] == "t"
    assert snap["seed"] == 11
    assert snap["digest"] == plan.digest()
    counters = snap["kinds"]["noc_jitter"]
    assert counters["opportunities"] == 20
    assert counters["fires"] == snap["total_fires"]
    assert counters["extra_cycles"] > 0


def test_faulted_run_emits_valid_trace_events_and_metrics():
    plan = FaultPlan(
        name="obs",
        seed=5,
        specs=(
            FaultSpec(kind=FaultKind.NOC_JITTER, rate=0.3, magnitude=6),
            FaultSpec(kind=FaultKind.WBUF_STALL, rate=0.3, magnitude=6),
        ),
    )
    tracer, metrics = Tracer(), Metrics()
    result = run_litmus(
        "lock_counter", INTRA_BMI, faults=plan, tracer=tracer, metrics=metrics
    )
    fault_events = [e for e in tracer.events if e["kind"] == "fault"]
    assert fault_events, "faults fired but no trace events were emitted"
    for event in tracer.events:
        validate_event(event)
    fired = {
        k.split(".")[1]
        for k in metrics.counters
        if k.startswith("faults.") and not k.endswith(".cycles")
    }
    assert fired == {
        e["op"] for e in fault_events
    } <= {"noc_jitter", "wbuf_stall"}
    assert result.faults["total_fires"] == len(fault_events)


def test_arming_requires_a_plan():
    with pytest.raises(TypeError):
        FaultInjector()  # noqa: the plan argument is mandatory
