"""Chaos runner: target resolution, digest verification, divergence path."""

import pytest

from repro.common.errors import ConfigError
from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.eval.parallel import SweepExecutor
from repro.faults.chaos import (
    ChaosTarget,
    default_targets,
    run_chaos,
    tiny_pressure_machine,
)
from repro.faults.model import FaultKind, FaultPlan, FaultSpec, random_plans
from repro.faults.report import percentile, render_json, render_text, summarize


def test_default_targets_cover_both_models_and_pressure():
    targets = default_targets()
    kinds = {t.kind for t in targets}
    assert kinds == {"litmus", "intra", "inter"}
    apps = {t.app for t in targets}
    # the paper workloads riding along with the litmus registry
    assert {"fft", "lu_cont", "is"} <= apps
    # only timing-independent kernels are valid chaos targets
    from repro.workloads.litmus import LITMUS

    for t in targets:
        if t.kind == "litmus":
            assert LITMUS[t.app].determinate


def test_default_targets_tokens():
    assert len(default_targets(["fft"])) == 1
    assert default_targets(["mp_flag"])[0].kind == "litmus"
    tiny = default_targets(["tiny"])[0]
    kwargs = dict(tiny.kwargs)
    assert kwargs["machine_params"] == tiny_pressure_machine()
    with pytest.raises(ConfigError):
        default_targets(["no_such_workload"])


def test_chaos_clean_on_determinate_kernels():
    targets = default_targets(["mp_flag", "lock_counter"])
    plans = random_plans(2, seed=5)
    result = run_chaos(targets, plans, executor=SweepExecutor(jobs=1))
    assert result.clean
    assert result.divergences == {}
    for outcome in result.outcomes:
        assert outcome.reference.memory_digest is not None
        assert outcome.baseline.memory_digest == outcome.reference.memory_digest
        assert len(outcome.runs) == len(plans)
        for run in outcome.runs:
            assert run.memory_digest == outcome.reference.memory_digest
            assert run.faults is not None


def test_chaos_detects_a_value_divergence():
    # The deliberately broken handoff kernel loses an update under B+M+I:
    # its *baseline* memory already diverges from the HCC oracle, which is
    # exactly the failure mode the digest comparison must catch.
    target = ChaosTarget(
        "litmus", "lock_handoff_three_threads_broken", INTRA_BMI, INTRA_HCC
    )
    plans = random_plans(1, seed=5)
    result = run_chaos([target], plans, executor=SweepExecutor(jobs=1))
    assert not result.clean
    bad = result.divergences["litmus:lock_handoff_three_threads_broken"]
    assert "<baseline>" in bad


def test_run_chaos_requires_targets():
    with pytest.raises(ConfigError):
        run_chaos([], random_plans(1))


def test_percentile_interpolates():
    assert percentile([], 50) == 0.0
    assert percentile([3.0], 99) == 3.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
    assert percentile([1.0, 2.0], 100) == 2.0


def test_summarize_and_render():
    targets = default_targets(["lock_multiline_sweep"])
    plans = random_plans(2, seed=9)
    result = run_chaos(targets, plans, executor=SweepExecutor(jobs=1))
    summary = summarize(result)
    assert summary["clean"]
    assert summary["plans"] == 2
    assert summary["runs"] == 2
    assert summary["slowdown_p50"] >= 1.0 or summary["slowdown_p50"] > 0
    assert set(summary["kinds"]) == {k.value for k in FaultKind}
    text = render_text(summary)
    assert "PASS" in text
    assert "lock_multiline_sweep" in text
    import json

    assert json.loads(render_json(summary))["clean"] is True


def test_chaos_cells_hit_the_result_cache(tmp_path):
    from repro.eval.cache import ResultCache

    targets = default_targets(["mp_flag"])
    plans = random_plans(1, seed=4)
    ex1 = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    first = run_chaos(targets, plans, executor=ex1)
    assert ex1.stats.cache_hits == 0
    ex2 = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    second = run_chaos(targets, plans, executor=ex2)
    assert ex2.stats.cache_hits == ex1.stats.cells
    a, b = summarize(first), summarize(second)
    a.pop("sweep"), b.pop("sweep")  # wall time / hit counts differ by design
    assert a == b
