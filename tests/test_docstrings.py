"""Docstring coverage floor for the documentation-gated packages.

CI runs ``ruff check --select D src/repro/{analysis,obs,eval,serve}`` on the
runner; ruff is not available in every development container, so this
test mirrors the missing-docstring (D1xx) half of that gate with the
stdlib AST: every public module, class, function, and method in the
gated packages must carry a docstring.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"
GATED = ("analysis", "obs", "eval", "serve")


def _missing_in(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path}:1 module docstring")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if child.name.startswith("_"):
                continue  # private API: docstrings encouraged, not required
            if ast.get_docstring(child) is None:
                missing.append(f"{path}:{child.lineno} {prefix}{child.name}")
            visit(child, f"{prefix}{child.name}.")

    visit(tree, "")
    return missing


@pytest.mark.parametrize("pkg", GATED)
def test_public_api_is_documented(pkg):
    files = sorted((SRC / pkg).rglob("*.py"))
    assert files, f"gated package {pkg} not found"
    missing = [m for f in files for m in _missing_in(f)]
    assert not missing, (
        "public APIs without docstrings (see docs/ARCHITECTURE.md):\n  "
        + "\n  ".join(missing)
    )
