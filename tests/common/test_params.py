"""Tests for architecture parameters (Table III)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.params import (
    WORD_BYTES,
    BufferParams,
    CacheParams,
    CoreParams,
    MeshParams,
    inter_block_machine,
    intra_block_machine,
    is_pow2,
)


class TestCacheParams:
    def test_l1_geometry(self):
        l1 = CacheParams(size_bytes=32 * 1024, assoc=4, line_bytes=64, round_trip=2)
        assert l1.num_sets == 128
        assert l1.num_lines == 512
        assert l1.words_per_line == 16
        assert l1.line_id_bits == 9  # the paper's 9-bit MEB entry

    def test_l2_bank_geometry(self):
        l2 = CacheParams(size_bytes=128 * 1024, assoc=8, line_bytes=64, round_trip=11)
        assert l2.num_sets == 256
        assert l2.num_lines == 2048

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1024, assoc=2, line_bytes=48, round_trip=1)

    def test_rejects_fractional_sets(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1000, assoc=2, line_bytes=64, round_trip=1)

    def test_rejects_zero_assoc(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1024, assoc=0, line_bytes=64, round_trip=1)

    def test_direct_mapped_allowed(self):
        c = CacheParams(size_bytes=1024, assoc=1, line_bytes=64, round_trip=1)
        assert c.num_sets == c.num_lines == 16


class TestCoreParams:
    def test_defaults_match_table3(self):
        core = CoreParams()
        assert core.issue_width == 4
        assert core.rob_entries == 176

    def test_overlap_bounds(self):
        with pytest.raises(ConfigError):
            CoreParams(overlap=1.5)
        with pytest.raises(ConfigError):
            CoreParams(overlap=-0.1)


class TestMeshParams:
    def test_defaults(self):
        mesh = MeshParams()
        assert mesh.cycles_per_hop == 4
        assert mesh.link_bytes == 16  # 128-bit links

    def test_flits_rounding(self):
        mesh = MeshParams()
        assert mesh.flits(1) == 1
        assert mesh.flits(16) == 1
        assert mesh.flits(17) == 2
        assert mesh.flits(64) == 4


class TestBufferParams:
    def test_defaults_match_table3(self):
        b = BufferParams()
        assert b.meb_entries == 16
        assert b.ieb_entries == 4

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            BufferParams(meb_entries=-1)


class TestMachineFactories:
    def test_intra_block_machine(self):
        m = intra_block_machine()
        assert m.num_blocks == 1
        assert m.cores_per_block == 16
        assert m.num_cores == 16
        assert m.l3_bank is None
        assert m.num_l3_banks == 0
        assert m.mem_round_trip == 150
        assert m.words_per_line == 16

    def test_inter_block_machine(self):
        m = inter_block_machine()
        assert m.num_blocks == 4
        assert m.cores_per_block == 8
        assert m.num_cores == 32
        assert m.l3_bank is not None
        assert m.num_l3_banks == 4
        assert m.l3_bank.size_bytes == 4 * 1024 * 1024  # 16MB total in 4 banks

    def test_mesh_dim_covers_cores(self):
        m = inter_block_machine()
        assert m.mesh_dim**2 >= m.num_cores

    def test_l2_one_bank_per_core(self):
        m = intra_block_machine(8)
        assert m.num_l2_banks == 8

    def test_word_size(self):
        assert WORD_BYTES == 4

    def test_is_pow2(self):
        assert is_pow2(1) and is_pow2(64)
        assert not is_pow2(0) and not is_pow2(48) and not is_pow2(-4)

    def test_custom_buffers(self):
        m = intra_block_machine(4, buffers=BufferParams(meb_entries=8))
        assert m.buffers.meb_entries == 8
