"""Tests for deterministic RNG streams."""

import numpy as np

from repro.common.rng import DEFAULT_SEED, make_rng


def test_same_stream_same_sequence():
    a = make_rng("fft").random(8)
    b = make_rng("fft").random(8)
    assert np.array_equal(a, b)


def test_distinct_streams_differ():
    a = make_rng("fft").random(8)
    b = make_rng("lu").random(8)
    assert not np.array_equal(a, b)


def test_seed_changes_sequence():
    a = make_rng("fft", seed=1).random(8)
    b = make_rng("fft", seed=2).random(8)
    assert not np.array_equal(a, b)


def test_default_seed_is_stable_constant():
    # Workload inputs (and hence measured figures) key off this value.
    assert DEFAULT_SEED == 20160516
