"""Differential verification: every software model vs the MESI oracle.

The registered software models (base, rc, sisd) must leave final main
memory bit-identical to the hardware-coherent reference on every
*determinate* litmus kernel — the same oracle `repro litmus --matrix`
applies, asserted here per-kernel so a regression names the kernel that
broke.  The deliberately broken kernels pin the expected-divergence
table instead: a broken kernel that starts passing (or a divergence
that moves) is as much a regression as a clean kernel failing.
"""

import pytest

from repro.core.config import (
    INTER_ADDR_L,
    INTER_HCC,
    INTRA_BMI,
    INTRA_HCC,
)
from repro.eval.runner import run_litmus
from repro.models.matrix import EXPECTED_DIVERGENCES
from repro.workloads.litmus import LITMUS

SOFTWARE_MODELS = ("base", "rc", "sisd")

DETERMINATE = [n for n, k in LITMUS.items() if k.determinate]
BROKEN = [n for n, k in LITMUS.items() if not k.determinate]


def _configs(name):
    if LITMUS[name].model == "inter":
        return INTER_ADDR_L, INTER_HCC
    return INTRA_BMI, INTRA_HCC


def _digest(name, model):
    soft_cfg, hcc_cfg = _configs(name)
    cfg = hcc_cfg if model == "hcc" else soft_cfg
    return run_litmus(
        name, cfg, verify=False, memory_digest=True, model=model
    ).memory_digest


@pytest.mark.parametrize("model", SOFTWARE_MODELS)
@pytest.mark.parametrize("kernel", DETERMINATE)
def test_determinate_kernels_match_oracle(model, kernel):
    assert _digest(kernel, model) == _digest(kernel, "hcc")


@pytest.mark.parametrize("model", SOFTWARE_MODELS)
@pytest.mark.parametrize("kernel", BROKEN)
def test_broken_kernels_pin_the_divergence_table(model, kernel):
    verdict = _digest(kernel, model) == _digest(kernel, "hcc")
    expected_match = (model, kernel) not in EXPECTED_DIVERGENCES
    assert verdict == expected_match, (
        f"{model} x {kernel}: "
        f"{'matched' if verdict else 'diverged'} but the expectation "
        f"table says {'match' if expected_match else 'diverge'}"
    )


def test_sisd_rescues_the_lock_handoff_race():
    # The one broken kernel whose lost update reaches main memory under
    # base/rc is repaired by SISD's ownership-transition recovery — the
    # property the expectation table encodes.  Guard it explicitly so
    # the table can never drift to "sisd diverges too" unnoticed.
    name = "lock_handoff_three_threads_broken"
    assert ("base", name) in EXPECTED_DIVERGENCES
    assert ("rc", name) in EXPECTED_DIVERGENCES
    assert ("sisd", name) not in EXPECTED_DIVERGENCES
    assert _digest(name, "sisd") == _digest(name, "hcc")
