"""The model registry: resolution rules, specs, and machine wiring."""

import pytest

from repro.coherence.hierarchy import Hierarchy
from repro.coherence.incoherent import IncoherentProtocol
from repro.coherence.mesi import MESIProtocol
from repro.common.errors import ConfigError
from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.models import (
    DEFAULT_MODEL,
    MODEL_ENV_VAR,
    available_models,
    resolve_model,
)
from repro.models.rc import RegionalConsistencyProtocol
from repro.models.sisd import SelfInvalidationProtocol
from repro.sim.stats import MachineStats


def _hierarchy():
    machine = intra_block_machine(4)
    return Hierarchy(machine, MachineStats.for_cores(machine.num_cores))


class TestRegistry:
    def test_all_four_models_registered_in_order(self):
        assert available_models() == ("base", "hcc", "rc", "sisd")

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(MODEL_ENV_VAR, raising=False)
        assert resolve_model(None).name == DEFAULT_MODEL == "base"

    def test_env_fallback_and_explicit_override(self, monkeypatch):
        monkeypatch.setenv(MODEL_ENV_VAR, "rc")
        assert resolve_model(None).name == "rc"
        # An explicit argument always wins over the environment.
        assert resolve_model("sisd").name == "sisd"
        # An empty env var means unset, not a model named "".
        monkeypatch.setenv(MODEL_ENV_VAR, "")
        assert resolve_model(None).name == "base"

    def test_unknown_model_is_a_config_error(self):
        with pytest.raises(ConfigError, match="unknown memory model"):
            resolve_model("tso")

    def test_software_flags(self):
        # Only the MESI oracle runs without WB/INV annotations.
        assert [resolve_model(m).software for m in available_models()] == [
            True, False, True, True,
        ]

    def test_factories_build_the_documented_protocols(self):
        expected = {
            "base": IncoherentProtocol,
            "hcc": MESIProtocol,
            "rc": RegionalConsistencyProtocol,
            "sisd": SelfInvalidationProtocol,
        }
        for name, cls in expected.items():
            proto = resolve_model(name).factory(_hierarchy(), INTRA_BMI)
            assert type(proto) is cls, name

    def test_base_factory_honors_config_hardware(self):
        bmi = resolve_model("base").factory(_hierarchy(), INTRA_BMI)
        assert bmi.use_meb and bmi.use_ieb
        # RC/SISD replace the MEB/IEB mechanisms outright.
        for name in ("rc", "sisd"):
            proto = resolve_model(name).factory(_hierarchy(), INTRA_BMI)
            assert not proto.use_meb and not proto.use_ieb, name


class TestMachineWiring:
    def test_run_litmus_selects_the_model(self):
        from repro.eval.runner import run_litmus

        rc = run_litmus("lock_counter", INTRA_BMI, model="rc")
        sisd = run_litmus("lock_counter", INTRA_BMI, model="sisd")
        base = run_litmus("lock_counter", INTRA_BMI)
        # Each model's degradation counters fire only under that model.
        assert rc.stats.rc_lazy_refreshes > 0
        assert rc.stats.sisd_transitions == 0
        assert sisd.stats.sisd_self_invalidations > 0
        assert sisd.stats.rc_lazy_refreshes == 0
        assert base.stats.rc_lazy_refreshes == 0
        assert base.stats.sisd_transitions == 0

    def test_hcc_config_overrides_requested_model(self):
        from repro.core.machine import Machine
        from repro.workloads.litmus import LITMUS, machine_params

        kernel = LITMUS["mp_flag"]
        machine = Machine(
            machine_params(kernel), INTRA_HCC, model="rc"
        )
        assert machine.model_spec.name == "hcc"
        assert type(machine.protocol) is MESIProtocol
