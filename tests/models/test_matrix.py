"""Unit tests for the litmus-matrix harness (`repro.models.matrix`)."""

import pytest

from repro.common.errors import ConfigError
from repro.eval.parallel import SweepExecutor
from repro.models.matrix import (
    DEFAULT_ENGINES,
    DEFAULT_MODELS,
    EXPECTED_DIVERGENCES,
    MatrixCell,
    matrix_cells,
    render_matrix,
    run_matrix,
)

KERNELS = ("mp_flag", "lock_handoff_three_threads_broken")


@pytest.fixture(scope="module")
def small_matrix():
    return run_matrix(
        ["base", "rc", "sisd"],
        list(KERNELS),
        ["ref"],
        executor=SweepExecutor(cache=None),
    )


class TestCellLowering:
    def test_oracle_dedupes_against_grid_hcc_ref(self):
        with_hcc, o1, g1 = matrix_cells(["base", "hcc"], KERNELS, ["ref"])
        without, o2, g2 = matrix_cells(["base"], KERNELS, ["ref"])
        # hcc/ref grid cells ARE the oracle cells: 2 models x 2 kernels
        # collapses to 2 base cells + 2 shared oracle cells.
        assert len(with_hcc) == 4
        assert len(without) == 4
        for k in KERNELS:
            assert o1[k] == g1[("hcc", k, "ref")]

    def test_every_grid_point_is_indexed(self):
        models, engines = ("base", "rc"), ("ref", "fast")
        cells, oracle_idx, grid_idx = matrix_cells(models, KERNELS, engines)
        assert set(grid_idx) == {
            (m, k, e) for m in models for k in KERNELS for e in engines
        }
        assert set(oracle_idx) == set(KERNELS)
        assert all(0 <= i < len(cells) for i in grid_idx.values())

    def test_hcc_cells_use_hardware_coherent_configs(self):
        cells, oracle_idx, _ = matrix_cells(["base"], ["mp_flag"], ["ref"])
        oracle = cells[oracle_idx["mp_flag"]]
        assert oracle.config.hardware_coherent
        grid_cell = [c for c in cells if not c.config.hardware_coherent]
        assert len(grid_cell) == 1


class TestRunMatrix:
    def test_small_grid_is_clean(self, small_matrix):
        assert small_matrix.ok
        assert small_matrix.unexpected() == []

    def test_expected_divergence_is_present(self, small_matrix):
        broken = "lock_handoff_three_threads_broken"
        for model in ("base", "rc"):
            c = small_matrix.cell(model, broken, "ref")
            assert c.verdict == "diverge" and not c.unexpected
        assert small_matrix.cell("sisd", broken, "ref").verdict == "match"

    def test_to_dict_grid_shape(self, small_matrix):
        doc = small_matrix.to_dict()
        assert doc["ok"] is True
        assert set(doc["grid"]) == {"base", "rc", "sisd"}
        assert set(doc["grid"]["base"]) == set(KERNELS)
        assert set(doc["model_exec_medians"]) == {"base", "rc", "sisd"}
        assert set(doc["oracle"]) == set(KERNELS)

    def test_render_glyphs(self, small_matrix):
        text = render_matrix(small_matrix)
        assert "all verdicts as expected" in text
        # base/rc diverge (expected) on the broken kernel; no cell is '!'
        # (the legend line mentions the glyph, so scan data rows only).
        rows = {
            line.split()[0]: line.split()[1:]
            for line in text.splitlines()
            if line.startswith(("mp_flag", "lock_handoff"))
        }
        assert rows["mp_flag"] == ["=", "=", "="]
        assert rows["lock_handoff_three_threads_broken"] == ["x", "x", "="]

    def test_validation_rejects_unknowns(self):
        with pytest.raises(ConfigError):
            run_matrix(["tso"], ["mp_flag"], ["ref"])
        with pytest.raises(ConfigError):
            run_matrix(["base"], ["ghost_kernel"], ["ref"])
        with pytest.raises(ConfigError):
            run_matrix(["base"], ["mp_flag"], ["warp"])
        with pytest.raises(ConfigError, match="duplicate"):
            run_matrix(["base", "base"], ["mp_flag"], ["ref"])


class TestExpectationTable:
    def test_defaults_cover_every_registered_axis(self):
        from repro.engines import available_engines
        from repro.models import available_models

        assert DEFAULT_MODELS == available_models()
        assert set(DEFAULT_ENGINES) == set(available_engines())

    def test_table_names_real_cells(self):
        from repro.workloads.litmus import LITMUS

        for model, kernel in EXPECTED_DIVERGENCES:
            assert model in DEFAULT_MODELS
            assert kernel in LITMUS
            # Only non-determinate kernels may legitimately diverge.
            assert not LITMUS[kernel].determinate

    def test_unexpected_cell_flags(self):
        good = MatrixCell("base", "mp_flag", "ref", "match", "match", 1, "d")
        bad = MatrixCell("base", "mp_flag", "ref", "diverge", "match", 1, "d")
        assert not good.unexpected and bad.unexpected
        assert bad.to_dict()["unexpected"] is True
