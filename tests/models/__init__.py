"""Tests for the memory-model registry, backends, and litmus matrix."""
