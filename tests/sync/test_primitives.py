"""Tests for lock/barrier/flag state machines."""

import pytest

from repro.common.errors import SyncError
from repro.sync.primitives import BarrierState, FlagState, LockState


def cb():
    return lambda: None


class TestLock:
    def test_immediate_grant_when_free(self):
        lock = LockState()
        assert lock.acquire(0, cb())
        assert lock.holder == 0

    def test_fifo_queueing(self):
        lock = LockState()
        lock.acquire(0, cb())
        assert not lock.acquire(1, cb())
        assert not lock.acquire(2, cb())
        nxt = lock.release(0)
        assert nxt[0] == 1
        nxt = lock.release(1)
        assert nxt[0] == 2
        assert lock.release(2) is None
        assert lock.holder is None

    def test_release_by_non_holder_rejected(self):
        lock = LockState()
        lock.acquire(0, cb())
        with pytest.raises(SyncError):
            lock.release(1)

    def test_reacquire_by_holder_rejected(self):
        lock = LockState()
        lock.acquire(0, cb())
        with pytest.raises(SyncError):
            lock.acquire(0, cb())


class TestBarrier:
    def test_releases_when_full(self):
        bar = BarrierState(count=3)
        assert bar.arrive(0, cb()) is None
        assert bar.arrive(1, cb()) is None
        released = bar.arrive(2, cb())
        assert [c for c, _ in released] == [0, 1, 2]
        assert bar.generation == 1

    def test_reusable_across_generations(self):
        bar = BarrierState(count=2)
        bar.arrive(0, cb())
        bar.arrive(1, cb())
        bar.arrive(1, cb())  # next phase
        released = bar.arrive(0, cb())
        assert released is not None
        assert bar.generation == 2

    def test_double_arrival_same_phase_rejected(self):
        bar = BarrierState(count=3)
        bar.arrive(0, cb())
        with pytest.raises(SyncError):
            bar.arrive(0, cb())

    def test_single_participant_releases_immediately(self):
        bar = BarrierState(count=1)
        assert bar.arrive(5, cb()) is not None

    def test_zero_count_rejected(self):
        bar = BarrierState(count=0)
        with pytest.raises(SyncError):
            bar.arrive(0, cb())


class TestFlag:
    def test_wait_satisfied_immediately(self):
        flag = FlagState()
        flag.set(2)
        assert flag.wait(0, 1, cb())

    def test_wait_queues_until_threshold(self):
        flag = FlagState()
        assert not flag.wait(0, 3, cb())
        assert flag.set(2) == []
        ready = flag.set(3)
        assert [c for c, _ in ready] == [0]

    def test_partial_release(self):
        flag = FlagState()
        flag.wait(0, 1, cb())
        flag.wait(1, 5, cb())
        ready = flag.set(2)
        assert [c for c, _ in ready] == [0]
        assert len(flag.waiters) == 1

    def test_monotonicity_enforced(self):
        flag = FlagState()
        flag.set(5)
        with pytest.raises(SyncError):
            flag.set(3)

    def test_equal_set_allowed(self):
        flag = FlagState()
        flag.set(5)
        flag.set(5)  # idempotent re-set is fine
        assert flag.value == 5
