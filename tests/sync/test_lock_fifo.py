"""Regression: per-channel FIFO ordering of lock messages under jitter.

Lock release is fire-and-forget (`SyncController.lock_release` resumes
the releaser after one cycle while the release message is still in
flight).  With mesh jitter armed, the same core's *next* acquire could
overtake its own in-flight release and reach the controller first,
tripping the non-reentrancy check with "re-acquired a non-reentrant
lock".  The `_lock_travel` arrival-floor clamp serializes each
(lock, core) channel; these tests pin both the crash fix and its
fault-free neutrality.

The race is timing-masked under the base model (acquire-side WB/INV
latency pads the window) and was exposed by Regional Consistency's
one-cycle lazy acquire — so the regression runs the lock kernels under
``rc``, across many jitter seeds.
"""

from __future__ import annotations

import pytest

from repro.core.config import INTRA_BMI
from repro.eval.runner import run_litmus
from repro.faults.model import FaultKind, FaultPlan, FaultSpec

LOCK_KERNELS = (
    "lock_counter",
    "lock_multiline_sweep",
    "lock_handoff_no_occ",
    "lock_handoff_three_threads",
)


def _jitter_plan(seed: int, magnitude: int = 8) -> FaultPlan:
    return FaultPlan(
        name="lock-fifo-jitter",
        seed=seed,
        specs=(
            FaultSpec(
                kind=FaultKind.NOC_JITTER, rate=1.0, magnitude=magnitude
            ),
        ),
    )


@pytest.mark.parametrize("kernel", LOCK_KERNELS)
@pytest.mark.parametrize("model", ("base", "rc", "sisd"))
def test_jittered_lock_kernels_complete_and_match(kernel, model):
    # Before the clamp this raised SyncError under rc on several seeds;
    # with it, every run completes and the final image is unchanged
    # (jitter may only slow things down, never lose the handoff).
    clean = run_litmus(kernel, INTRA_BMI, memory_digest=True, model=model)
    for seed in range(6):
        degraded = run_litmus(
            kernel, INTRA_BMI, memory_digest=True, model=model,
            faults=_jitter_plan(seed),
        )
        assert degraded.memory_digest == clean.memory_digest, (model, seed)


def test_clamp_is_identity_without_faults():
    # Fault-free runs give every message on a (lock, core) channel an
    # identical travel time, so the floor never binds: the clamp must be
    # invisible in both timing and values (the goldens in tests/faults/
    # pin this machine-wide; this is the targeted unit-level check).
    from repro.workloads.litmus import LITMUS, machine_params
    from repro.core.machine import Machine

    kernel = LITMUS["lock_counter"]
    machine = Machine(machine_params(kernel), INTRA_BMI)
    sync = machine.sync

    # Same-channel messages with constant travel arrive strictly in order
    # and unmodified.
    assert sync._lock_travel(0, 0, 7) == 7
    # Same cycle, same travel: the floor equals this arrival exactly, so
    # the second message is not delayed.
    assert sync._lock_travel(0, 0, 7) == 7


def test_clamp_serializes_overtaking_message():
    from repro.workloads.litmus import LITMUS, machine_params
    from repro.core.machine import Machine

    kernel = LITMUS["lock_counter"]
    machine = Machine(machine_params(kernel), INTRA_BMI)
    sync = machine.sync

    # A slow release (travel 10) followed by a fast acquire (travel 2)
    # on the same channel: the acquire is held back to arrival >= 10.
    assert sync._lock_travel(0, 0, 10) == 10
    assert sync._lock_travel(0, 0, 2) == 10
    # Distinct channels (other core, other lock) are unaffected.
    assert sync._lock_travel(1, 0, 2) == 2
    assert sync._lock_travel(0, 1, 2) == 2
