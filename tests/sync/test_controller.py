"""Tests for the sync controller (queued, uncacheable, in the shared cache)."""

import pytest

from repro.common.errors import SyncError
from repro.common.params import inter_block_machine, intra_block_machine
from repro.noc.mesh import Mesh
from repro.sim.engine import Engine
from repro.sim.stats import MachineStats, TrafficCat
from repro.sync.controller import SyncController


def make(machine=None):
    machine = machine or intra_block_machine(4)
    engine = Engine()
    stats = MachineStats.for_cores(machine.num_cores)
    ctl = SyncController(Mesh(machine), engine, stats)
    return ctl, engine, stats


def test_lock_grant_roundtrip_has_latency():
    ctl, engine, _ = make()
    granted_at = []
    ctl.lock_acquire(1, 0, lambda: granted_at.append(engine.now))
    engine.run()
    assert granted_at and granted_at[0] > 0


def test_lock_mutual_exclusion_and_handoff():
    ctl, engine, _ = make()
    order = []

    def hold(core, lid):
        def on_grant():
            order.append(("grant", core, engine.now))
            # Hold the lock for 10 cycles, then release.
            engine.schedule(10, lambda: ctl.lock_release(core, lid, lambda: None))

        return on_grant

    ctl.lock_acquire(0, 7, hold(0, 7))
    ctl.lock_acquire(1, 7, hold(1, 7))
    engine.run()
    grants = sorted(t for kind, _, t in order if kind == "grant")
    assert len(grants) == 2
    # Mutual exclusion: the second grant happens after the first holder's
    # 10-cycle hold completed (grant order itself depends on mesh distance).
    assert grants[1] >= grants[0] + 10


def test_barrier_releases_all_at_completion():
    ctl, engine, _ = make()
    released = []
    for core in range(4):
        ctl.barrier_arrive(core, 0, 4, lambda c=core: released.append((c, engine.now)))
    engine.run()
    assert sorted(c for c, _ in released) == [0, 1, 2, 3]
    times = [t for _, t in released]
    # Nobody is released before the last arrival.
    assert min(times) > 0


def test_barrier_count_mismatch_rejected():
    ctl, engine, _ = make()
    ctl.barrier_arrive(0, 0, 4, lambda: None)
    with pytest.raises(SyncError):
        ctl.declare_barrier(0, 8)


def test_flag_wakes_waiters_in_value_order():
    ctl, engine, _ = make()
    woken = []
    ctl.flag_wait(0, 3, 1, lambda: woken.append((0, engine.now)))
    ctl.flag_wait(1, 3, 2, lambda: woken.append((1, engine.now)))
    engine.schedule(50, lambda: ctl.flag_set(2, 3, 1, lambda: None))
    engine.schedule(100, lambda: ctl.flag_set(2, 3, 2, lambda: None))
    engine.run()
    assert [c for c, _ in woken] == [0, 1]
    assert woken[0][1] < woken[1][1]


def test_flag_wait_already_satisfied():
    ctl, engine, _ = make()
    done = []
    ctl.flag_set(0, 9, 5, lambda: None)
    engine.run()
    ctl.flag_wait(1, 9, 5, lambda: done.append(engine.now))
    engine.run()
    assert done


def test_release_is_fire_and_forget():
    ctl, engine, _ = make()
    resumed = []
    ctl.lock_acquire(0, 1, lambda: None)
    engine.run()
    ctl.lock_release(0, 1, lambda: resumed.append(engine.now))
    start = engine.now
    engine.run()
    # The releaser resumes after ~1 cycle, not a full round trip.
    assert resumed[0] - start <= 2


def test_sync_messages_counted_as_sync_traffic():
    ctl, engine, stats = make()
    ctl.lock_acquire(0, 0, lambda: None)
    engine.run()
    assert stats.traffic[TrafficCat.SYNC] >= 2  # request + grant
    assert stats.traffic[TrafficCat.INVALIDATION] == 0


def test_inter_machine_uses_l3_banks():
    ctl, engine, _ = make(inter_block_machine(2, 2))
    assert ctl._at_l3
    granted = []
    ctl.lock_acquire(0, 0, lambda: granted.append(engine.now))
    engine.run()
    assert granted


def test_lock_holder_inspection():
    ctl, engine, _ = make()
    ctl.lock_acquire(2, 5, lambda: None)
    engine.run()
    assert ctl.lock_holder(5) == 2
    assert ctl.lock_holder(99) is None
    assert ctl.flag_value(123) == 0
