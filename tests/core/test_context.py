"""Tests for the thread programming API (ThreadCtx helpers)."""

import pytest

from repro import Machine, intra_block_machine
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_HCC


def run(config, program, *, threads=2, arrays=None):
    m = Machine(intra_block_machine(4), config, num_threads=threads)
    arrs = {n: m.array(n, s) for n, s in (arrays or {"a": 64}).items()}
    m.spawn_all(lambda ctx: program(ctx, arrs))
    stats = m.run()
    return m, stats


@pytest.mark.parametrize("config", [INTRA_HCC, INTRA_BASE, INTRA_BMI])
def test_barrier_orders_producer_consumer(config):
    def program(ctx, arrs):
        a = arrs["a"]
        yield from ctx.store(a.addr(ctx.tid), ctx.tid * 7)
        yield from ctx.barrier()
        peer = (ctx.tid + 1) % ctx.nthreads
        v = yield from ctx.load(a.addr(peer))
        yield from ctx.store(a.addr(ctx.tid + 8), v)
        yield from ctx.barrier()

    m, _ = run(config, program)
    assert m.read_word(m.space.lookup("a").base + 8 * 4) == 7
    assert m.read_word(m.space.lookup("a").base + 9 * 4) == 0


@pytest.mark.parametrize("config", [INTRA_HCC, INTRA_BASE, INTRA_BMI])
def test_critical_section_counter(config):
    """N threads increment a shared counter 5 times each under a lock."""

    def program(ctx, arrs):
        a = arrs["a"]
        for _ in range(5):
            yield from ctx.lock_acquire(0, occ=False)
            v = yield from ctx.load(a.addr(0))
            yield from ctx.store(a.addr(0), v + 1)
            yield from ctx.lock_release(0, occ=False)

    m, _ = run(config, program, threads=4)
    assert m.read_word(m.space.lookup("a").base) == 20


@pytest.mark.parametrize("config", [INTRA_HCC, INTRA_BASE, INTRA_BMI])
def test_flag_producer_consumer(config):
    def program(ctx, arrs):
        a = arrs["a"]
        if ctx.tid == 0:
            yield from ctx.store(a.addr(0), 42)
            yield from ctx.flag_set(0)
        else:
            yield from ctx.flag_wait(0)
            v = yield from ctx.load(a.addr(0))
            yield from ctx.store(a.addr(1), v)

    m, _ = run(config, program)
    assert m.read_word(m.space.lookup("a").base + 4) == 42


@pytest.mark.parametrize("config", [INTRA_HCC, INTRA_BASE, INTRA_BMI])
def test_racy_flag_data_pattern(config):
    """Figure 6b: data race made visible with explicit WB/INV."""

    def program(ctx, arrs):
        a = arrs["a"]
        if ctx.tid == 0:
            yield from ctx.store(a.addr(0), 7)
            # Post data, then the racy flag (WB order matters).
            yield from ctx.barrier(wb=[a.range(0, 1)], inv=())
            yield from ctx.racy_store(a.addr(1), 1)
        else:
            yield from ctx.barrier(wb=(), inv=[a.range(0, 1)])
            while True:
                flag = yield from ctx.racy_load(a.addr(1))
                if flag:
                    break
            v = yield from ctx.load(a.addr(0))
            yield from ctx.store(a.addr(2), v)

    m, _ = run(config, program)
    assert m.read_word(m.space.lookup("a").base + 8) == 7


def test_occ_task_queue_pattern():
    """Figure 4d: data produced outside the CS flows to a later dequeuer."""

    def program(ctx, arrs):
        a = arrs["a"]
        q = arrs["q"]
        # Produce a value outside any critical section.
        yield from ctx.store(a.addr(16 + ctx.tid), 100 + ctx.tid)
        # Enqueue (critical section with OCC annotations).
        yield from ctx.lock_acquire(0, occ=True)
        slot = yield from ctx.load(q.addr(0))
        yield from ctx.store(q.addr(1 + int(slot)), ctx.tid)
        yield from ctx.store(q.addr(0), int(slot) + 1)
        yield from ctx.lock_release(0, occ=True)
        yield from ctx.barrier()
        # Dequeue someone else's task and consume their produced value.
        yield from ctx.lock_acquire(0, occ=True)
        idx = yield from ctx.load(q.addr(0))
        producer = yield from ctx.load(q.addr(int(idx)))
        yield from ctx.store(q.addr(0), int(idx) - 1)
        yield from ctx.lock_release(0, occ=True)
        v = yield from ctx.load(a.addr(16 + int(producer)))
        yield from ctx.store(a.addr(32 + ctx.tid), v)

    for config in (INTRA_HCC, INTRA_BASE, INTRA_BMI):
        m, _ = run(config, program, arrays={"a": 64, "q": 16})
        base = m.space.lookup("a").base
        got = sorted(m.read_word(base + (32 + t) * 4) for t in range(2))
        assert got == [100, 101], config.name


def test_load_many_store_many():
    def program(ctx, arrs):
        a = arrs["a"]
        yield from ctx.store_many((a.addr(i), i * 2) for i in range(4))
        vals = yield from ctx.load_many(a.addr(i) for i in range(4))
        assert vals == [0, 2, 4, 6]

    run(INTRA_HCC, program, threads=1)


def test_compute_zero_is_noop():
    def program(ctx, arrs):
        yield from ctx.compute(0)
        yield from ctx.compute(5)

    _, stats = run(INTRA_HCC, program, threads=1)
    assert stats.exec_time >= 5
