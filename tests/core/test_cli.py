"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out and "jacobi" in out
    assert "B+M+I" in out and "Addr+L" in out


def test_run_intra_default_config(capsys):
    assert main(["run", "volrend", "--scale", "0.4"]) == 0
    out = capsys.readouterr().out
    assert "volrend under B+M+I: verified OK" in out
    assert "exec time" in out and "lock_stall" in out


def test_run_intra_explicit_config(capsys):
    assert main(["run", "volrend", "--config", "HCC", "--scale", "0.4"]) == 0
    assert "under HCC" in capsys.readouterr().out


def test_run_inter_default_config(capsys):
    assert main(["run", "ep", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "ep under Addr+L: verified OK" in out
    assert "WB lines" in out  # level-adaptive counters printed


def test_run_unknown_workload(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_table1(capsys):
    assert main(["table1"]) == 0
    assert "cholesky" in capsys.readouterr().out


def test_table3_both_machines(capsys):
    assert main(["table3", "--machine", "intra"]) == 0
    out1 = capsys.readouterr().out
    assert "32KB" in out1 and "L3" not in out1
    assert main(["table3"]) == 0
    assert "Shared L3" in capsys.readouterr().out


def test_storage(capsys):
    assert main(["storage"]) == 0
    assert "102" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_invalid_jobs_is_a_usage_error(capsys):
    """Bad --jobs exits 2 with a one-line message, not a traceback."""
    assert main(["fig11", "--scale", "0.25", "--jobs", "0"]) == 2
    err = capsys.readouterr().err
    assert "repro: error: jobs must be >= 1 (got 0)" in err
    assert "Traceback" not in err


def test_run_staleness_mode(capsys):
    assert main(["run", "volrend", "--scale", "0.4", "--staleness"]) == 0
    out = capsys.readouterr().out
    assert "0 stale read(s)" in out
