"""Tests for the Model-1 annotation algorithm (Section IV-A, Figure 4)."""

from repro.core.annotate import Annotator
from repro.core.config import (
    INTRA_BASE,
    INTRA_BI,
    INTRA_BM,
    INTRA_BMI,
    INTRA_HCC,
)
from repro.isa import ops as isa


def kinds(ops):
    return [type(op) for op in ops]


class TestHCCDisablesEverything:
    def test_all_hooks_empty(self):
        a = Annotator(INTRA_HCC)
        assert a.before_barrier() == []
        assert a.after_barrier() == []
        assert a.before_acquire() == []
        assert a.after_acquire() == []
        assert a.before_release() == []
        assert a.after_release() == []
        assert a.before_flag_set() == []
        assert a.after_flag_wait() == []
        assert a.after_racy_store(0x40) == []
        assert a.before_racy_load(0x40) == []


class TestBarrierAnnotations:
    def test_defaults_are_all_ops(self):
        a = Annotator(INTRA_BASE)
        assert kinds(a.before_barrier()) == [isa.WBAll]
        assert kinds(a.after_barrier()) == [isa.INVAll]

    def test_hints_narrow_to_ranges(self):
        a = Annotator(INTRA_BASE)
        before = a.before_barrier(wb=[(0x100, 64), (0x200, 128)])
        assert kinds(before) == [isa.WB, isa.WB]
        assert before[0].addr == 0x100 and before[1].length == 128
        after = a.after_barrier(inv=[(0x100, 64)])
        assert kinds(after) == [isa.INV]

    def test_empty_hint_means_nothing(self):
        """Thread-private reuse of shared space: no WB/INV at all."""
        a = Annotator(INTRA_BASE)
        assert a.before_barrier(wb=()) == []
        assert a.after_barrier(inv=()) == []


class TestCriticalSectionAnnotations:
    def test_base_with_occ(self):
        a = Annotator(INTRA_BASE)
        # OCC write-back, then CS-entry INV, both before the acquire.
        assert kinds(a.before_acquire(occ=True)) == [isa.WBAll, isa.INVAll]
        assert a.after_acquire() == []
        rel = a.before_release()
        assert kinds(rel) == [isa.WBAll]
        assert not rel[0].via_meb
        assert kinds(a.after_release(occ=True)) == [isa.INVAll]

    def test_base_without_occ(self):
        a = Annotator(INTRA_BASE)
        assert kinds(a.before_acquire(occ=False)) == [isa.INVAll]
        assert a.after_release(occ=False) == []

    def test_meb_arms_epoch_and_uses_meb_wb(self):
        a = Annotator(INTRA_BM)
        arm = a.after_acquire()
        assert kinds(arm) == [isa.EpochBegin]
        assert arm[0].record_meb and not arm[0].ieb_mode
        rel = a.before_release()
        assert kinds(rel) == [isa.WBAll, isa.EpochEnd]
        assert rel[0].via_meb

    def test_ieb_replaces_entry_inv(self):
        a = Annotator(INTRA_BI)
        # No INV ALL before the acquire — the IEB refreshes per read.
        assert kinds(a.before_acquire(occ=False)) == []
        arm = a.after_acquire()
        assert arm[0].ieb_mode and not arm[0].record_meb
        # But the release-side WB stays full (why B+I alone is ineffective).
        rel = a.before_release()
        assert not rel[0].via_meb

    def test_bmi_combines_both(self):
        a = Annotator(INTRA_BMI)
        arm = a.after_acquire()
        assert arm[0].record_meb and arm[0].ieb_mode
        rel = a.before_release()
        assert rel[0].via_meb

    def test_programmer_cs_hints(self):
        a = Annotator(INTRA_BASE)
        ops = a.before_acquire(occ=False, cs_inv=[(0x40, 4)])
        assert kinds(ops) == [isa.INV]
        rel = a.before_release(cs_wb=[(0x40, 4)])
        assert kinds(rel) == [isa.WB]


class TestFlagAnnotations:
    def test_set_posts_writes_first(self):
        a = Annotator(INTRA_BASE)
        assert kinds(a.before_flag_set()) == [isa.WBAll]
        assert kinds(a.before_flag_set(wb=[(0x80, 64)])) == [isa.WB]

    def test_wait_invalidates_after(self):
        a = Annotator(INTRA_BASE)
        assert kinds(a.after_flag_wait()) == [isa.INVAll]


class TestDataRaceAnnotations:
    def test_figure6b_pattern(self):
        a = Annotator(INTRA_BASE)
        wb = a.after_racy_store(0x40, 4)
        assert kinds(wb) == [isa.WB] and wb[0].addr == 0x40
        inv = a.before_racy_load(0x40, 4)
        assert kinds(inv) == [isa.INV]
