"""Tests for machine assembly, CPU stall attribution, and config plumbing."""

import pytest

from repro import Machine, intra_block_machine
from repro.common.errors import ConfigError
from repro.core.config import (
    INTRA_BASE,
    INTRA_BMI,
    INTRA_HCC,
    ExperimentConfig,
    InterMode,
    inter_config,
    intra_config,
)
from repro.isa import ops as isa
from repro.sim.stats import StallCat


class TestConfigs:
    def test_table2_intra_names(self):
        for name in ("Base", "B+M", "B+I", "B+M+I", "HCC"):
            assert intra_config(name).name == name

    def test_table2_inter_names(self):
        for name in ("Base", "Addr", "Addr+L", "HCC"):
            assert inter_config(name).name == name

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigError):
            intra_config("nope")

    def test_hcc_cannot_have_buffers(self):
        with pytest.raises(ConfigError):
            ExperimentConfig("bad", hardware_coherent=True, use_meb=True)

    def test_inter_modes(self):
        assert inter_config("Addr").inter_mode == InterMode.ADDR
        assert inter_config("Addr+L").inter_mode == InterMode.ADDR_LEVEL
        assert inter_config("HCC").inter_mode == InterMode.HCC


class TestMachineLifecycle:
    @staticmethod
    def _empty(ctx):
        return
        yield  # pragma: no cover - makes this a generator

    def test_spawn_limit(self):
        m = Machine(intra_block_machine(4), INTRA_BASE, num_threads=2)
        m.spawn(self._empty)
        m.spawn(self._empty)
        with pytest.raises(ConfigError):
            m.spawn(self._empty)

    def test_run_requires_threads(self):
        m = Machine(intra_block_machine(4), INTRA_BASE, num_threads=2)
        with pytest.raises(ConfigError):
            m.run()

    def test_machine_runs_once(self):
        m = Machine(intra_block_machine(4), INTRA_BASE, num_threads=1)
        m.spawn(self._empty)
        m.run()
        with pytest.raises(ConfigError):
            m.run()

    def test_placement_size_mismatch(self):
        from repro.noc.placement import identity_placement

        params = intra_block_machine(4)
        with pytest.raises(ConfigError):
            Machine(
                params,
                INTRA_BASE,
                num_threads=3,
                placement=identity_placement(params, 2),
            )


class TestStallAttribution:
    def _run(self, config, program):
        m = Machine(intra_block_machine(2), config, num_threads=2)
        arr = m.array("a", 64)
        m.spawn_all(lambda ctx: program(ctx, arr))
        return m.run()

    def test_compute_goes_to_rest(self):
        def program(ctx, arr):
            yield isa.Compute(100)

        stats = self._run(INTRA_HCC, program)
        assert stats.stall_total(StallCat.REST) >= 200  # both cores

    def test_wb_ops_charged_to_wb_stall(self):
        def program(ctx, arr):
            yield isa.Write(arr.addr(0), 1)
            yield isa.WBAll()

        stats = self._run(INTRA_BASE, program)
        assert stats.stall_total(StallCat.WB) > 0
        assert stats.summary()["wb_ops"] == 2

    def test_inv_ops_charged_to_inv_stall(self):
        def program(ctx, arr):
            yield isa.Read(arr.addr(0))
            yield isa.INVAll()

        stats = self._run(INTRA_BASE, program)
        assert stats.stall_total(StallCat.INV) > 0

    def test_lock_wait_charged_to_lock_stall(self):
        def program(ctx, arr):
            yield isa.LockAcquire(0)
            yield isa.Compute(200)
            yield isa.LockRelease(0)

        stats = self._run(INTRA_HCC, program)
        # The second core waits out the first's 200-cycle hold.
        assert stats.stall_total(StallCat.LOCK) >= 200

    def test_barrier_imbalance_charged_to_barrier_stall(self):
        def program(ctx, arr):
            if ctx.tid == 0:
                yield isa.Compute(500)
            yield isa.Barrier(0, 2)

        stats = self._run(INTRA_HCC, program)
        assert stats.stall_total(StallCat.BARRIER) >= 400

    def test_exec_time_is_critical_path(self):
        def program(ctx, arr):
            yield isa.Compute(300 if ctx.tid == 0 else 50)

        stats = self._run(INTRA_HCC, program)
        assert stats.exec_time >= 300

    def test_hcc_pays_nothing_for_wbinv(self):
        def program(ctx, arr):
            yield isa.Write(arr.addr(ctx.tid), 1)
            yield isa.WBAll()
            yield isa.INVAll()

        stats = self._run(INTRA_HCC, program)
        assert stats.stall_total(StallCat.WB) == 0
        assert stats.stall_total(StallCat.INV) == 0


class TestFunctionalMemory:
    def test_read_word_after_run(self):
        m = Machine(intra_block_machine(2), INTRA_BMI, num_threads=2)
        arr = m.array("a", 32)

        def program(ctx):
            yield isa.Write(arr.addr(ctx.tid), ctx.tid + 10)

        m.spawn_all(program)
        m.run()
        assert m.read_word(arr.addr(0)) == 10
        assert m.read_word(arr.addr(1)) == 11

    def test_read_array_row_major(self):
        m = Machine(intra_block_machine(2), INTRA_HCC, num_threads=1)
        arr = m.array("m", (2, 2))

        def program(ctx):
            for i in range(2):
                for j in range(2):
                    yield isa.Write(arr.addr(i, j), 10 * i + j)

        m.spawn(program)
        m.run()
        assert m.read_array(arr) == [0, 1, 10, 11]


class TestBufferStats:
    def test_hcc_reports_zeros(self):
        m = Machine(intra_block_machine(2), INTRA_HCC, num_threads=1)

        def program(ctx):
            yield isa.Compute(1)

        m.spawn(program)
        m.run()
        assert all(v == 0 for v in m.buffer_stats().values())

    def test_meb_overflow_counted(self):
        from repro import BufferParams

        params = intra_block_machine(
            2, buffers=BufferParams(meb_entries=2, ieb_entries=4)
        )
        m = Machine(params, INTRA_BMI, num_threads=1)
        arr = m.array("a", 256)

        def program(ctx):
            yield from ctx.lock_acquire(0, occ=False)
            for k in range(8):  # 8 lines through a 2-entry MEB
                yield isa.Write(arr.addr(16 * k), k)
            yield from ctx.lock_release(0, occ=False)

        m.spawn(program)
        m.run()
        stats = m.buffer_stats()
        assert stats["meb_overflows"] >= 1
        assert stats["meb_insertions"] >= 2
