"""CLI tests for `repro gen`, `repro replay`, and `repro fleet`."""

from __future__ import annotations

import json

from repro.cli import main


def test_gen_list_patterns(capsys):
    assert main(["gen", "--list-patterns"]) == 0
    out = capsys.readouterr().out
    for name in ("producer_consumer", "migratory", "lock_convoy",
                 "false_sharing", "zipf_hot"):
        assert name in out


def test_gen_runs_and_verifies_one_scenario(capsys):
    rc = main(["gen", "zipf_hot", "--seed", "7", "--config", "B+M+I"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "verified OK" in out
    assert "lint           clean" in out


def test_gen_requires_a_pattern():
    assert main(["gen"]) == 2
    assert main(["gen", "warp_speed"]) == 2


def test_replay_roundtrip_of_a_recorded_trace(tmp_path, capsys):
    trace = tmp_path / "cell.jsonl"
    assert main([
        "trace", "volrend", "--config", "B+M+I", "--scale", "0.5",
        "--out", str(trace),
    ]) == 0
    capsys.readouterr()
    out_trace = tmp_path / "replayed.jsonl"
    rc = main([
        "replay", str(trace), "--roundtrip", "--out", str(out_trace),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out
    assert out_trace.exists()
    assert (
        out_trace.read_text().splitlines() == trace.read_text().splitlines()
    )


def test_replay_missing_file_is_a_usage_error(tmp_path):
    assert main(["replay", str(tmp_path / "nope.jsonl")]) == 2


def test_fleet_writes_a_clean_verdict(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "verdict.json"
    rc = main([
        "fleet", "--scenarios", "4", "--engines", "ref,fast",
        "--jobs", "1", "--out", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "verdict: CLEAN" in printed
    doc = json.loads(out.read_text())
    assert doc["clean"] is True
    assert doc["scenarios"] == 4
    assert doc["cells"] == 4 * (1 + 2 * 2)


def test_fleet_rejects_hcc_config(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["fleet", "--scenarios", "1", "--configs", "HCC"]) == 2
