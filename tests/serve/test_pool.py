"""Worker pool: execution, cache accounting, retry under injected faults."""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import ConfigError
from repro.core.config import intra_config
from repro.eval.cache import ResultCache
from repro.eval.parallel import SweepCell, SweepExecutor
from repro.serve.jobs import Unit
from repro.serve.pool import (
    UnitOutcome,
    WorkerFaultPlan,
    WorkerPool,
    WorkItem,
)


def fft_unit() -> Unit:
    return Unit(
        "intra:fft/Base",
        cell=SweepCell.make(
            "intra", "fft", intra_config("Base"), scale=0.25, num_threads=4
        ),
    )


def run_units(pool: WorkerPool, units, should_run=lambda: True):
    """Drive *units* through *pool* on a fresh event loop; return outcomes."""

    async def body():
        outcomes: dict[int, UnitOutcome] = {}
        done = asyncio.Event()

        def on_done(i, outcome):
            outcomes[i] = outcome
            if len(outcomes) == len(units):
                done.set()

        await pool.start()
        for i, unit in enumerate(units):
            pool.put(WorkItem(
                unit, should_run=should_run, on_start=lambda: None,
                on_done=lambda o, i=i: on_done(i, o),
            ))
        await asyncio.wait_for(done.wait(), 60)
        await pool.stop()
        return [outcomes[i] for i in range(len(units))]

    return asyncio.run(body())


class TestPlanValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError, match="rate"):
            WorkerFaultPlan(rate=1.5)

    def test_rejects_bad_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            WorkerFaultPlan(rate=0.1, kind="gremlin")

    def test_rejects_bad_pool_shape(self):
        with pytest.raises(ConfigError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ConfigError, match="retries"):
            WorkerPool(retries=-1)


class TestExecution:
    def test_cell_unit_matches_direct_executor(self, tmp_path):
        unit = fft_unit()
        direct = SweepExecutor(jobs=1).run_cells([unit.cell])[0]
        pool = WorkerPool(workers=2, cache=ResultCache(tmp_path / "c"))
        [outcome] = run_units(pool, [unit])
        assert outcome.ok and outcome.attempts == 1
        assert outcome.result.to_dict() == direct.to_dict()
        assert (outcome.cache_hits, outcome.cache_misses) == (0, 1)

    def test_second_run_is_a_cache_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        first = run_units(WorkerPool(workers=1, cache=cache), [fft_unit()])
        second = run_units(WorkerPool(workers=1, cache=cache), [fft_unit()])
        assert first[0].cache_misses == 1 and first[0].cache_hits == 0
        assert second[0].cache_hits == 1 and second[0].cache_misses == 0
        assert second[0].result.to_dict() == first[0].result.to_dict()

    def test_fn_unit(self):
        unit = Unit("fn", fn=lambda: {"clean": True})
        [outcome] = run_units(WorkerPool(workers=1), [unit])
        assert outcome.ok and outcome.result == {"clean": True}

    def test_should_run_false_skips(self):
        pool = WorkerPool(workers=1)
        [outcome] = run_units(pool, [fft_unit()], should_run=lambda: False)
        assert outcome.skipped and outcome.reason == "cancelled"
        assert pool.units_run == 0  # skipped units never hit a thread

    def test_failing_fn_reports_error_after_retries(self):
        def boom():
            raise RuntimeError("kaput")

        pool = WorkerPool(workers=1, retries=2)
        [outcome] = run_units(pool, [Unit("boom", fn=boom)])
        assert not outcome.ok
        assert outcome.attempts == 3
        assert "kaput" in outcome.error
        assert pool.retries_used == 2


class TestFaultInjection:
    def test_crash_faults_are_retried_to_the_same_result(self, tmp_path):
        """A flaky pool (50% crash rate) still serves bit-identical results."""
        direct = SweepExecutor(jobs=1).run_cells([fft_unit().cell])[0]
        pool = WorkerPool(
            workers=2,
            cache=ResultCache(tmp_path / "c"),
            retries=10,
            faults=WorkerFaultPlan(rate=0.5, seed=7, kind="crash"),
        )
        outcomes = run_units(pool, [fft_unit() for _ in range(8)])
        assert all(o.ok for o in outcomes)
        assert all(
            o.result.to_dict() == direct.to_dict() for o in outcomes
        )
        assert pool.retries_used > 0  # the seed really fired at 50%

    def test_fault_stream_is_deterministic(self):
        plan = WorkerFaultPlan(rate=0.5, seed=123, kind="crash")

        def draws(pool):
            return [pool._draw_fault() for _ in range(32)]

        a = draws(WorkerPool(workers=1, faults=plan))
        b = draws(WorkerPool(workers=1, faults=plan))
        assert a == b
        assert "crash" in a  # rate 0.5 over 32 draws fires

    def test_stall_fault_trips_timeout(self):
        pool = WorkerPool(
            workers=1,
            timeout=0.05,
            retries=0,
            faults=WorkerFaultPlan(rate=1.0, seed=1, kind="stall",
                                   stall_s=0.5),
        )
        [outcome] = run_units(pool, [Unit("fn", fn=lambda: {"ok": True})])
        assert not outcome.ok
        assert "TimeoutError" in outcome.error


class TestShutdown:
    def test_stop_drops_queued_units_as_skipped(self):
        async def body():
            pool = WorkerPool(workers=1)
            outcomes = []
            # never started: stop() before start() drops everything queued
            for _ in range(3):
                pool.put(WorkItem(
                    Unit("fn", fn=lambda: {}), should_run=lambda: True,
                    on_start=lambda: None, on_done=outcomes.append,
                ))
            dropped = await pool.stop()
            return dropped, outcomes

        dropped, outcomes = asyncio.run(body())
        assert dropped == 3
        assert all(o.skipped and o.reason == "shutdown" for o in outcomes)
