"""Crash-recovery e2e tests: WAL journal + resume + self-healing cache.

The centrepiece boots a **real** ``repro serve`` subprocess, SIGKILLs it
mid-flight, restarts it with ``--journal DIR --resume``, and proves the
ISSUE 9 durability contract: the interrupted job comes back under its
original id, completes, and its result is bit-identical to a direct
:class:`~repro.eval.parallel.SweepExecutor` run.  The rest covers the
in-process seams: graceful drain leaving open jobs resumable, recovery /
dedupe / corruption counters on ``/v1/metrics``, journal rotation
without ``--resume``, and a smoke run of the full chaos drill.
"""

from __future__ import annotations

import time

from repro.core.config import intra_config
from repro.eval.parallel import SweepCell, SweepExecutor
from repro.serve import LocalServer, ServerConfig
from repro.serve.drill import ServerProc, _free_port, chaos_drill
from repro.serve.journal import JOURNAL_NAME, STALE_SUFFIX
from repro.serve.loadgen import ResilientClient, RetryPolicy

APPS = ("fft", "lu_cont", "volrend", "water_nsq")
CONFIGS = ("Base", "B+M", "B+M+I")


def wait_for_unit_record(journal_dir, deadline_s=30.0):
    """Block until the journal shows at least one completed unit.

    Killing (or draining) on a timer is racy: on a fast machine the whole
    12-unit job can finalize before a fixed sleep elapses, and the test
    would then correctly recover nothing.  Watching the fsynced journal
    pins the interruption to a moment the job is provably mid-flight.
    """
    path = journal_dir / JOURNAL_NAME
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        if path.exists() and '"rec":"unit"' in path.read_text():
            return
        time.sleep(0.005)
    raise AssertionError("no unit record appeared in the journal")


def big_payload(scale=0.5, threads=4):
    """12 units — slow enough on one worker to be killed mid-flight."""
    return {
        "schema": 1,
        "kind": "sweep",
        "spec": {
            "model": "intra",
            "apps": list(APPS),
            "configs": list(CONFIGS),
            "scale": scale,
            "num_threads": threads,
        },
    }


def direct_matrix(scale=0.5, threads=4):
    flat = iter(SweepExecutor(jobs=1).run_cells([
        SweepCell.make("intra", app, intra_config(cfg),
                       scale=scale, num_threads=threads)
        for app in APPS for cfg in CONFIGS
    ]))
    return {app: {cfg: next(flat).to_dict() for cfg in CONFIGS}
            for app in APPS}


class TestSigkillResume:
    def test_kill9_resume_same_id_bit_identical(self, tmp_path):
        """The tentpole: kill -9 loses no acknowledged work."""
        port = _free_port()
        server = ServerProc(
            host="127.0.0.1", port=port, workers=1,
            cache_dir=str(tmp_path / "cache"),
            journal_dir=str(tmp_path / "journal"),
            log_path=str(tmp_path / "server.log"),
        )
        client = ResilientClient(
            "127.0.0.1", port, policy=RetryPolicy(attempts=10, cap_s=0.5)
        )
        server.start()
        server.wait_ready()
        try:
            status, sub = client.request(
                "POST", "/v1/jobs", big_payload(), client="e2e"
            )
            assert status == 200 and not sub["deduped"]
            jid = sub["id"]
            # let at least one unit land, then pull the plug mid-flight
            wait_for_unit_record(tmp_path / "journal")

            server.kill()  # SIGKILL: no drain, no flush, memory gone
            server.start()
            server.wait_ready()

            status, met = client.request("GET", "/v1/metrics")
            assert status == 200
            assert met["durability"]["recovered_jobs"] == 1
            assert met["durability"]["resumed"] is True

            # identical resubmission dedupes onto the recovered job
            status, dup = client.request(
                "POST", "/v1/jobs", big_payload(), client="e2e"
            )
            assert status == 200 and dup["deduped"] and dup["id"] == jid
            status, met = client.request("GET", "/v1/metrics")
            assert met["durability"]["deduped_jobs"] == 1

            # the SAME id completes, bit-identical to direct execution
            final = client.wait(jid, timeout=180.0)
            assert final is not None and final["state"] == "done"
            assert final["recovered"] is True
            assert final["result"]["matrix"] == direct_matrix()

            # once finalized, another crash cycle recovers nothing
            server.kill()
            server.start()
            server.wait_ready()
            status, met = client.request("GET", "/v1/metrics")
            assert met["durability"]["recovered_jobs"] == 0
            status, doc = client.request("GET", f"/v1/jobs/{jid}")
            assert status == 404  # compacted away; resubmission would
            # be idempotent and cache-served
        finally:
            server.stop(client)

    def test_chaos_drill_smoke(self, tmp_path):
        """One full kill/corrupt/resume cycle of the drill machinery."""
        doc = chaos_drill(
            jobs=8, kills=1, corrupt=2, concurrency=4, workers=4,
            scale=0.2, out=None, work_dir=str(tmp_path), job_timeout=120.0,
        )
        assert doc["ok"], doc
        assert doc["completed"] == 8
        assert doc["kills"] == 1 and doc["incarnations"] == 2
        assert doc["divergences"] == 0
        assert doc["corrupt_undetected"] == 0
        assert doc["corrupted_files"] == doc["corrupt_healed"] + \
            doc["corrupt_quarantined"]


class TestGracefulDrainRecovery:
    def test_drained_jobs_resume_on_next_start(self, tmp_path):
        """Drain-cancelled jobs are not finalized: --resume requeues them."""
        journal = str(tmp_path / "journal")
        cache = str(tmp_path / "cache")
        cfg = ServerConfig(workers=1, cache_dir=cache, journal_dir=journal)
        with LocalServer(cfg) as srv:
            st, sub = srv.request("POST", "/v1/jobs", big_payload())
            assert st == 200
            jid = sub["id"]
            # drain while provably mid-flight (some units done, not all)
            wait_for_unit_record(tmp_path / "journal")
        # graceful drain happened: in-memory job settled as cancelled,
        # but the journal still holds it open
        resumed = ServerConfig(
            workers=2, cache_dir=cache, journal_dir=journal, resume=True
        )
        with LocalServer(resumed) as srv:
            st, met = srv.request("GET", "/v1/metrics")
            assert met["durability"]["recovered_jobs"] == 1
            final = srv.wait(jid)
            assert final["state"] == "done"
            assert final["result"]["matrix"] == direct_matrix()

    def test_explicit_cancel_is_final_across_restarts(self, tmp_path):
        """A client cancel IS journaled: resume must not resurrect it."""
        journal = str(tmp_path / "journal")
        cache = str(tmp_path / "cache")
        cfg = ServerConfig(workers=1, cache_dir=cache, journal_dir=journal)
        with LocalServer(cfg) as srv:
            st, sub = srv.request("POST", "/v1/jobs", big_payload())
            st, ack = srv.request("POST", f"/v1/jobs/{sub['id']}/cancel")
            assert st == 200
            assert srv.wait(sub["id"])["state"] == "cancelled"
            jid = sub["id"]
        resumed = ServerConfig(
            workers=1, cache_dir=cache, journal_dir=journal, resume=True
        )
        with LocalServer(resumed) as srv:
            st, met = srv.request("GET", "/v1/metrics")
            assert met["durability"]["recovered_jobs"] == 0
            st, _ = srv.request("GET", f"/v1/jobs/{jid}")
            assert st == 404

    def test_without_resume_the_journal_is_rotated_aside(self, tmp_path):
        journal_dir = tmp_path / "journal"
        cfg = ServerConfig(
            workers=1, cache_dir=str(tmp_path / "cache"),
            journal_dir=str(journal_dir),
        )
        with LocalServer(cfg) as srv:
            st, sub = srv.request("POST", "/v1/jobs", big_payload(scale=0.2))
            srv.wait(sub["id"])
        with LocalServer(cfg) as srv:  # resume=False: fresh journal
            st, met = srv.request("GET", "/v1/metrics")
            assert met["durability"]["recovered_jobs"] == 0
        stale = list(journal_dir.glob(f"{JOURNAL_NAME}{STALE_SUFFIX}*"))
        assert stale, "old journal must be rotated aside, not destroyed"


class TestCacheCorruptionMetrics:
    def test_corrupt_entry_quarantined_recomputed_and_counted(self, tmp_path):
        """Satellite: /v1/metrics surfaces corrupt_detected/quarantined."""
        cache_dir = tmp_path / "cache"
        cfg = ServerConfig(workers=2, cache_dir=str(cache_dir))
        payload = big_payload(scale=0.25)
        with LocalServer(cfg) as srv:
            st, sub = srv.request("POST", "/v1/jobs", payload)
            first = srv.wait(sub["id"])
            assert first["state"] == "done"

            entries = [
                p for p in cache_dir.rglob("*.json")
                if p.parent.name != "quarantine"
            ]
            assert len(entries) == 12
            entries[0].write_text("garbage", encoding="utf-8")

            st, sub2 = srv.request("POST", "/v1/jobs", payload)
            second = srv.wait(sub2["id"])
            assert second["state"] == "done"
            assert second["result"] == first["result"]  # never served corrupt
            assert second["cache_hits"] == 11
            assert second["cache_misses"] == 1  # the healed entry

            st, met = srv.request("GET", "/v1/metrics")
            assert met["cache"]["corrupt_detected"] == 1
            assert met["cache"]["quarantined"] == 1
            assert met["metrics"]["counters"]["cache.corrupt_detected"] == 1
