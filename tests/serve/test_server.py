"""End-to-end job-server tests over real HTTP (repro.serve.server).

Each test boots a :class:`~repro.serve.loadgen.LocalServer` — a real
asyncio server on an ephemeral port, driven from client threads with
``http.client`` — and exercises the ISSUE 8 acceptance behaviours:
served results bit-identical to a direct :class:`SweepExecutor` run,
cancellation freeing worker slots, 429 quota/backpressure rejections,
and cache-served resubmission.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import intra_config
from repro.eval.parallel import SweepCell, SweepExecutor
from repro.serve import LocalServer, ServerConfig, WorkerFaultPlan


def sweep_payload(apps=("fft",), configs=("Base",), scale=0.25, threads=4):
    return {
        "schema": 1,
        "kind": "sweep",
        "spec": {
            "model": "intra",
            "apps": list(apps),
            "configs": list(configs),
            "scale": scale,
            "num_threads": threads,
        },
    }


@pytest.fixture
def server(tmp_path):
    cfg = ServerConfig(workers=4, cache_dir=str(tmp_path / "cache"))
    with LocalServer(cfg) as srv:
        yield srv


class TestLifecycle:
    def test_health_schema_metrics(self, server):
        st, health = server.request("GET", "/healthz")
        assert st == 200 and health["ok"] and not health["draining"]
        st, schema = server.request("GET", "/v1/schema")
        assert st == 200 and schema["schema"] == 1
        assert "sweep" in schema["kinds"] and "cancelled" in schema["states"]
        st, metrics = server.request("GET", "/v1/metrics")
        assert st == 200 and metrics["workers"] == 4

    def test_submit_poll_done(self, server):
        st, sub = server.request("POST", "/v1/jobs", sweep_payload())
        assert st == 200 and sub["ok"] and sub["units"] == 1
        final = server.wait(sub["id"])
        assert final["state"] == "done"
        assert final["done_units"] == 1 and final["failed_units"] == 0
        assert final["result"]["kind"] == "sweep"

    def test_unknown_job_404_and_bad_body_400(self, server):
        st, doc = server.request("GET", "/v1/jobs/j99999")
        assert st == 404
        st, doc = server.request("POST", "/v1/jobs", {"kind": "nope"})
        assert st == 400 and "kind" in doc["error"]
        st, doc = server.request("GET", "/v1/nowhere")
        assert st == 404

    def test_job_listing_filters_by_client(self, server):
        for client in ("alice", "bob"):
            st, sub = server.request(
                "POST", "/v1/jobs", sweep_payload(), client=client
            )
            server.wait(sub["id"])
        st, all_jobs = server.request("GET", "/v1/jobs")
        assert st == 200 and len(all_jobs["jobs"]) == 2
        st, alice = server.request("GET", "/v1/jobs?client=alice")
        assert [j["client"] for j in alice["jobs"]] == ["alice"]


class TestBitIdentical:
    def test_served_result_matches_direct_executor(self, server):
        """The tentpole contract: serving changes nothing but the transport."""
        apps, configs = ("fft", "volrend"), ("Base", "B+M+I")
        st, sub = server.request(
            "POST", "/v1/jobs", sweep_payload(apps, configs)
        )
        final = server.wait(sub["id"])
        assert final["state"] == "done"

        direct = SweepExecutor(jobs=1).run_cells([
            SweepCell.make("intra", app, intra_config(cfg),
                           scale=0.25, num_threads=4)
            for app in apps for cfg in configs
        ])
        flat = iter(direct)
        expect = {
            app: {cfg: next(flat).to_dict() for cfg in configs}
            for app in apps
        }
        assert final["result"]["matrix"] == expect

    def test_event_stream_is_ordered_and_terminal(self, server):
        st, sub = server.request(
            "POST", "/v1/jobs", sweep_payload(configs=("Base", "B+M+I"))
        )
        final = server.wait(sub["id"])
        events = server.stream_events(sub["id"])
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0] == {
            "event": "state", "state": "queued", "kind": "sweep",
            "units": 2, "job": sub["id"], "seq": 0, "ts": events[0]["ts"],
        }
        unit_events = [e for e in events if e["event"] == "unit"]
        assert len(unit_events) == 2
        assert all(e["cache"] in ("hit", "miss") for e in unit_events)
        assert events[-1]["state"] == final["state"] == "done"

    def test_drain_terminates_inflight_event_stream(self, tmp_path):
        """Graceful drain must end an open chunked stream, not hang it.

        A client tailing ``/v1/jobs/{id}/events`` when ``/v1/shutdown``
        lands must see the stream close with a terminal state event —
        ``done`` if the job squeaked through, ``cancelled`` if the drain
        skipped its remaining units — rather than blocking forever on a
        half-open chunked response.
        """
        cfg = ServerConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        with LocalServer(cfg) as srv:
            st, sub = srv.request("POST", "/v1/jobs", sweep_payload(
                apps=("fft", "lu_cont", "volrend", "water_nsq"),
                configs=("Base", "B+M", "B+M+I"),
                scale=0.5,
            ))
            assert st == 200
            got: list[dict] = []
            tail = threading.Thread(
                target=lambda: got.extend(srv.stream_events(sub["id"])),
                daemon=True,
            )
            tail.start()
            time.sleep(0.1)  # stream attached, units flowing
            st, _ = srv.request("POST", "/v1/shutdown", timeout=30.0)
            assert st == 200
            tail.join(timeout=30.0)
            assert not tail.is_alive(), "event stream hung across drain"
            assert got, "stream delivered no events"
            assert got[-1]["event"] == "state"
            assert got[-1]["state"] in ("done", "cancelled")


class TestCache:
    def test_resubmission_is_cache_served_and_10x_faster(self, server):
        """Identical submission #2 must be served from cache, >=10x faster."""
        payload = sweep_payload(
            apps=("fft", "lu_cont", "volrend", "water_nsq"),
            configs=("Base", "B+M", "B+M+I"),
            scale=1.0,
        )
        t0 = time.perf_counter()
        st, sub = server.request("POST", "/v1/jobs", payload)
        cold = server.wait(sub["id"])
        cold_s = time.perf_counter() - t0
        assert cold["state"] == "done"
        assert cold["cache_misses"] == 12 and cold["cache_hits"] == 0

        t1 = time.perf_counter()
        st, sub2 = server.request("POST", "/v1/jobs", payload)
        hot = server.wait(sub2["id"])
        hot_s = time.perf_counter() - t1
        assert hot["state"] == "done"
        assert hot["cache_hits"] == 12 and hot["cache_misses"] == 0
        assert hot["result"] == cold["result"]
        assert hot_s * 10 <= cold_s, (
            f"cache-served rerun only {cold_s / hot_s:.1f}x faster "
            f"({cold_s:.3f}s -> {hot_s:.3f}s)"
        )


class TestAdmissionControl:
    def test_quota_rejects_with_429(self, tmp_path):
        cfg = ServerConfig(
            workers=1, quota=1, cache_dir=str(tmp_path / "cache")
        )
        big = sweep_payload(
            apps=("fft", "lu_cont", "volrend", "water_nsq"),
            configs=("Base", "B+M+I"),
        )
        with LocalServer(cfg) as srv:
            st, sub = srv.request("POST", "/v1/jobs", big, client="greedy")
            assert st == 200 and not sub["deduped"]
            # an identical resubmission while active dedupes onto the
            # live job instead of burning quota (idempotent by digest)
            st, dup = srv.request("POST", "/v1/jobs", big, client="greedy")
            assert st == 200 and dup["deduped"] and dup["id"] == sub["id"]
            # a *different* job from the same client trips the quota
            st, err = srv.request(
                "POST", "/v1/jobs", sweep_payload(), client="greedy"
            )
            assert st == 429 and "quota" in err["error"]
            # quota is per client: another identity is admitted
            st, other = srv.request(
                "POST", "/v1/jobs", sweep_payload(), client="patient"
            )
            assert st == 200
            srv.wait(sub["id"])
            srv.wait(other["id"])
            # terminal jobs release quota (and do not dedupe)
            st, again = srv.request("POST", "/v1/jobs", big, client="greedy")
            assert st == 200 and not again["deduped"]
            assert again["id"] != sub["id"]
            srv.wait(again["id"])

    def test_queue_limit_backpressure_429(self, tmp_path):
        cfg = ServerConfig(
            workers=1, quota=64, queue_limit=4,
            cache_dir=str(tmp_path / "cache"),
        )
        big = sweep_payload(
            apps=("fft", "lu_cont", "volrend", "water_nsq"),
            configs=("Base", "B+M+I"),
        )  # 8 units > queue_limit 4
        with LocalServer(cfg) as srv:
            st, err = srv.request("POST", "/v1/jobs", big)
            assert st == 429 and "queue full" in err["error"]
            st, ok = srv.request("POST", "/v1/jobs", sweep_payload())
            assert st == 200
            srv.wait(ok["id"])


class TestCancellation:
    def test_cancel_frees_worker_slots(self, tmp_path):
        """Pending units of a cancelled job are skipped, not executed."""
        cfg = ServerConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        many = sweep_payload(
            apps=("fft", "lu_cont", "volrend", "water_nsq"),
            configs=("Base", "B+M", "B+M+I"),
            scale=1.0,
        )  # 12 units, serial worker: plenty left to cancel
        with LocalServer(cfg) as srv:
            st, sub = srv.request("POST", "/v1/jobs", many)
            assert st == 200
            st, ack = srv.request("POST", f"/v1/jobs/{sub['id']}/cancel")
            assert st == 200 and ack["ok"]
            final = srv.wait(sub["id"])
            assert final["state"] == "cancelled"
            assert final["skipped_units"] > 0
            assert final["done_units"] + final["skipped_units"] == 12

            # the freed slots serve the next job normally
            t0 = time.perf_counter()
            st, nxt = srv.request("POST", "/v1/jobs", sweep_payload())
            assert st == 200
            assert srv.wait(nxt["id"])["state"] == "done"
            assert time.perf_counter() - t0 < 30
            # cancelling a settled job is a 409
            st, ack = srv.request("POST", f"/v1/jobs/{sub['id']}/cancel")
            assert st == 409 and not ack["ok"]


class TestFaultsAndKinds:
    def test_flaky_workers_still_serve_identical_results(self, tmp_path):
        """Injected worker crashes are retried away (faults/ -> serve/)."""
        cfg = ServerConfig(
            workers=2,
            retries=10,
            cache_dir=str(tmp_path / "cache"),
            faults=WorkerFaultPlan(rate=0.4, seed=9, kind="crash"),
        )
        direct = SweepExecutor(jobs=1).run_cells([
            SweepCell.make("intra", "fft", intra_config("Base"),
                           scale=0.25, num_threads=4)
        ])[0]
        with LocalServer(cfg) as srv:
            st, sub = srv.request(
                "POST", "/v1/jobs", sweep_payload(configs=("Base",))
            )
            final = srv.wait(sub["id"])
            assert final["state"] == "done"
            assert final["result"]["matrix"]["fft"]["Base"] == direct.to_dict()
            st, met = srv.request("GET", "/v1/metrics")
            assert met["retries_used"] >= 0  # counter exposed

    def test_gen_and_lint_jobs(self, server):
        st, sub = server.request("POST", "/v1/jobs", {
            "kind": "gen",
            "spec": {"pattern": "migratory", "configs": ["Base", "B+M+I"]},
        })
        final = server.wait(sub["id"])
        assert final["state"] == "done"
        assert final["result"]["coherent"] is True

        st, sub = server.request("POST", "/v1/jobs", {
            "kind": "lint", "spec": {"workloads": ["fft", "mp_flag"]},
        })
        final = server.wait(sub["id"])
        assert final["state"] == "done"
        assert final["result"]["clean"] is True

    def test_chaos_job_clean(self, server):
        st, sub = server.request("POST", "/v1/jobs", {
            "kind": "chaos",
            "spec": {"plans": 2, "workloads": ["mp_flag", "lock_counter"]},
        })
        final = server.wait(sub["id"])
        assert final["state"] == "done"
        assert final["result"]["kind"] == "chaos"
        assert final["result"]["clean"] is True

    def test_shutdown_drains(self, tmp_path):
        cfg = ServerConfig(workers=1, cache_dir=str(tmp_path / "cache"))
        srv = LocalServer(cfg)
        with srv:
            st, doc = srv.request("POST", "/v1/shutdown")
            assert st == 200 and doc["draining"]
        # close() after shutdown is a no-op; the loop thread exited
        assert not srv._thread.is_alive()
