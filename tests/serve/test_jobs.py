"""Job-schema validation and compilation (repro.serve.jobs)."""

from __future__ import annotations

import pytest

from repro.serve.jobs import (
    JOB_KINDS,
    JOB_SCHEMA,
    MAX_UNITS,
    JobError,
    compile_job,
)


def sweep_payload(**spec):
    base = {
        "model": "intra",
        "apps": ["fft"],
        "configs": ["Base"],
        "scale": 0.25,
        "num_threads": 4,
    }
    base.update(spec)
    return {"schema": JOB_SCHEMA, "kind": "sweep", "spec": base}


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(JobError, match="JSON object"):
            compile_job(["not", "a", "dict"])

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(JobError, match="unsupported job schema"):
            compile_job({"schema": 99, "kind": "sweep", "spec": {}})

    def test_schema_defaults_to_current(self):
        job = compile_job({"kind": "sweep", "spec": sweep_payload()["spec"]})
        assert job.kind == "sweep"

    def test_rejects_unknown_kind(self):
        with pytest.raises(JobError, match="kind must be one of"):
            compile_job({"schema": 1, "kind": "frobnicate", "spec": {}})

    def test_all_kinds_are_registered(self):
        assert JOB_KINDS == ("sweep", "gen", "litmus", "chaos", "lint", "fleet")

    def test_job_error_carries_http_status(self):
        with pytest.raises(JobError) as exc:
            compile_job({"kind": "sweep", "spec": {"apps": ["nope"],
                                                   "configs": ["Base"]}})
        assert exc.value.status == 400

    def test_rejects_unknown_config(self):
        with pytest.raises(JobError, match="config"):
            compile_job(sweep_payload(configs=["NotAConfig"]))

    def test_rejects_bad_scale(self):
        with pytest.raises(JobError, match="scale"):
            compile_job(sweep_payload(scale=99.0))

    def test_rejects_bad_engine(self):
        with pytest.raises(JobError, match="engine"):
            compile_job(sweep_payload(engine="warp"))

    def test_rejects_out_of_range_threads(self):
        with pytest.raises(JobError, match="num_threads"):
            compile_job(sweep_payload(num_threads=1000))

    def test_rejects_oversized_job(self):
        apps = ["fft", "lu_cont", "volrend", "water_nsq", "barnes",
                "cholesky", "raytrace", "ocean_cont", "ocean_noncont",
                "lu_noncont", "water_sp"]
        # 11 apps x 6 configs = 66 cells; inflate via a spec that exceeds
        # MAX_UNITS is impractical here, so check the ceiling constant and
        # the zero-unit floor instead.
        assert MAX_UNITS == 1024
        with pytest.raises(JobError, match="non-empty"):
            compile_job(sweep_payload(apps=[]))
        job = compile_job(sweep_payload(apps=apps[:3]))
        assert len(job.units) == 3


class TestCompilation:
    def test_sweep_unit_grid(self):
        job = compile_job(sweep_payload(apps=["fft", "volrend"],
                                        configs=["Base", "B+M+I"]))
        assert [u.label for u in job.units] == [
            "intra:fft/Base", "intra:fft/B+M+I",
            "intra:volrend/Base", "intra:volrend/B+M+I",
        ]
        assert all(u.cell is not None for u in job.units)

    def test_gen_compiles_with_defaults(self):
        job = compile_job({"kind": "gen", "spec": {"pattern": "migratory"}})
        assert len(job.units) == 1
        assert job.units[0].cell.kind == "gen"

    def test_litmus_all_selects_registry(self):
        from repro.workloads.litmus import LITMUS

        job = compile_job({"kind": "litmus", "spec": {"all": True}})
        assert len(job.units) == len(LITMUS)

    def test_chaos_stride(self):
        job = compile_job({"kind": "chaos",
                           "spec": {"plans": 2, "workloads": ["mp_flag"]}})
        # one target: HCC reference + baseline + 2 plans
        assert len(job.units) == 4

    def test_lint_rejects_hcc(self):
        with pytest.raises(JobError, match="HCC"):
            compile_job({"kind": "lint",
                         "spec": {"workloads": ["fft"], "config": "HCC"}})

    def test_fleet_stride(self):
        job = compile_job({"kind": "fleet", "spec": {
            "scenarios": 2, "configs": ["Base"], "engines": ["ref"]}})
        # per scenario: HCC reference + 1 config x 1 engine
        assert len(job.units) == 4

    def test_sweep_finalize_shape(self):
        from repro.eval.parallel import SweepExecutor

        job = compile_job(sweep_payload(configs=["Base", "B+M+I"]))
        results = SweepExecutor(jobs=1).run_cells(
            [u.cell for u in job.units]
        )
        doc = job.finalize(results)
        assert set(doc["matrix"]["fft"]) == {"Base", "B+M+I"}
        cell = doc["matrix"]["fft"]["Base"]
        assert cell["app"] == "fft" and "stats" in cell
