"""Unit tests for the write-ahead journal (repro.serve.journal)."""

import json

from repro.serve.journal import (
    JOURNAL_NAME,
    JOURNAL_SCHEMA,
    Journal,
    job_digest,
)


def submitted(jid, digest="d", client="c", payload=None, units=2):
    return {"rec": "submitted", "id": jid, "digest": digest,
            "client": client, "payload": payload or {"kind": "sweep"},
            "units": units}


class TestDigest:
    def test_stable_and_order_insensitive(self):
        a = job_digest("sweep", {"apps": ["fft"], "scale": 0.5}, "alice")
        b = job_digest("sweep", {"scale": 0.5, "apps": ["fft"]}, "alice")
        assert a == b and len(a) == 64

    def test_varies_with_kind_spec_and_client(self):
        base = job_digest("sweep", {"apps": ["fft"]}, "alice")
        assert job_digest("gen", {"apps": ["fft"]}, "alice") != base
        assert job_digest("sweep", {"apps": ["lu_cont"]}, "alice") != base
        assert job_digest("sweep", {"apps": ["fft"]}, "bob") != base


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.append(submitted("j00001"))
        j.append({"rec": "unit", "id": "j00001", "unit": 0})
        j.append(submitted("j00002"))
        j.append({"rec": "finalized", "id": "j00002", "state": "done"})
        j.close()
        state = Journal(tmp_path).replay()
        assert set(state.open_jobs) == {"j00001"}
        assert state.open_jobs["j00001"].units_done == {0}
        assert state.finalized == {"j00002": "done"}
        assert state.max_seq == 2
        assert state.incarnations == 1
        assert state.skipped == 0

    def test_every_record_is_fsynced_one_per_line(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.append(submitted("j00001"))
        # readable mid-session without close(): flush+fsync per append
        lines = (tmp_path / JOURNAL_NAME).read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["rec"] == "open"
        assert json.loads(lines[0])["schema"] == JOURNAL_SCHEMA
        assert json.loads(lines[1])["id"] == "j00001"
        j.close()

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        """A crash mid-append must not poison recovery."""
        j = Journal(tmp_path)
        j.open()
        j.append(submitted("j00001"))
        j.append(submitted("j00002"))
        j.close()
        path = tmp_path / JOURNAL_NAME
        raw = path.read_text()
        path.write_text(raw[:-20])  # tear the last record
        state = Journal(tmp_path).replay()
        assert set(state.open_jobs) == {"j00001"}
        assert state.skipped == 1

    def test_garbage_lines_are_skipped_not_fatal(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.append(submitted("j00001"))
        j.close()
        path = tmp_path / JOURNAL_NAME
        path.write_text("not json\n" + path.read_text() + "[1,2]\n")
        state = Journal(tmp_path).replay()
        assert set(state.open_jobs) == {"j00001"}
        assert state.skipped == 2

    def test_cancel_marks_the_open_job(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.append(submitted("j00001"))
        j.append({"rec": "cancel", "id": "j00001"})
        j.close()
        state = Journal(tmp_path).replay()
        assert state.open_jobs["j00001"].cancel_requested

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        state = Journal(tmp_path / "nowhere").replay()
        assert not state.open_jobs and state.records == 0

    def test_max_seq_counts_finalized_ids_too(self, tmp_path):
        """The id sequence must never be reissued, even for done jobs."""
        j = Journal(tmp_path)
        j.open()
        j.append(submitted("j00007"))
        j.append({"rec": "finalized", "id": "j00007", "state": "done"})
        j.close()
        assert Journal(tmp_path).replay().max_seq == 7


class TestCompactAndRotate:
    def test_compact_keeps_only_open_jobs(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        for i in range(1, 6):
            j.append(submitted(f"j0000{i}"))
        for i in range(1, 4):
            j.append({"rec": "finalized", "id": f"j0000{i}", "state": "done"})
        j.append({"rec": "cancel", "id": "j00005"})
        j.close()
        state = Journal(tmp_path).replay()
        j2 = Journal(tmp_path)
        j2.compact(state)
        lines = (tmp_path / JOURNAL_NAME).read_text().splitlines()
        recs = [json.loads(line) for line in lines]
        assert [r["id"] for r in recs if r["rec"] == "submitted"] == \
            ["j00004", "j00005"]
        assert [r["id"] for r in recs if r["rec"] == "cancel"] == ["j00005"]
        # compaction loses no recovery information
        state2 = j2.replay()
        assert set(state2.open_jobs) == {"j00004", "j00005"}
        assert state2.open_jobs["j00005"].cancel_requested

    def test_rotate_stale_preserves_evidence(self, tmp_path):
        j = Journal(tmp_path)
        j.open()
        j.append(submitted("j00001"))
        j.close()
        moved = Journal(tmp_path).rotate_stale()
        assert moved is not None and moved.exists()
        assert not (tmp_path / JOURNAL_NAME).exists()
        # a second rotation numbers the destination instead of clobbering
        j2 = Journal(tmp_path)
        j2.open()
        j2.close()
        moved2 = Journal(tmp_path).rotate_stale()
        assert moved2 != moved and moved2.exists() and moved.exists()

    def test_rotate_without_journal_is_a_noop(self, tmp_path):
        assert Journal(tmp_path).rotate_stale() is None
