"""Job-server throughput: hundreds of concurrent submissions, verified.

Thin runnable wrapper over :func:`repro.serve.loadgen.bench_serve` (the
same code path as ``repro serve --bench``): boots an in-process job
server, replays ``--jobs`` concurrent submissions per pass from
``--concurrency`` client threads — a cold pass against an empty result
cache, then a hot pass resubmitting the identical job set — verifies
every served result bit-identical to a direct ``SweepExecutor`` run, and
archives p50/p99 latency plus cache-hit ratio to ``BENCH_serve.json`` at
the repository root.  Exits non-zero on any divergence or failed job.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=120,
                        help="submissions per pass (default: 120)")
    parser.add_argument("--concurrency", type=int, default=24,
                        help="concurrent client threads (default: 24)")
    parser.add_argument("--workers", type=int, default=8,
                        help="server worker-pool width (default: 8)")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="workload scale per cell (default: 0.3)")
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="output path (default: BENCH_serve.json)")
    args = parser.parse_args()

    from repro.serve.loadgen import bench_serve

    doc = bench_serve(
        jobs=args.jobs,
        concurrency=args.concurrency,
        workers=args.workers,
        scale=args.scale,
        out=args.out,
    )
    print(json.dumps(doc, indent=1, sort_keys=True))
    bad = sum(
        doc[p][k] for p in ("cold", "hot") for k in ("divergences", "failures")
    )
    return 0 if bad == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
