"""Ablation: hierarchical reductions (the paper's §VII-C suggestion).

"Since a reduction does not have ordering, it is not possible to determine
producer-consumer pairs ... To exploit local communication, one could
re-write the code to have hierarchical reductions, which reduce first
inside the block and then globally."

This bench runs EP flat vs EP rewritten with the two-level reduction under
Addr+L on the 4×8 machine, showing that the rewrite (a) localizes most of
the previously-global WB/INV lines and (b) speeds up execution — the
level-adaptive hardware pays off once the software exposes the hierarchy.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import bench_main, run_once, save_result

from repro import Machine, inter_block_machine
from repro.core.config import INTER_ADDR_L
from repro.workloads import MODEL_TWO


def run(app: str, **kw) -> dict:
    machine = Machine(inter_block_machine(4, 8), INTER_ADDR_L, num_threads=32)
    stats = MODEL_TWO[app](scale=1.0, **kw).run_on(machine)
    return {
        "exec": stats.exec_time,
        "gwb": stats.global_wb_lines,
        "ginv": stats.global_inv_lines,
        "lwb": stats.local_wb_lines,
        "linv": stats.local_inv_lines,
    }


def sweep():
    """Flat vs hierarchical EP reduction; returns the report text."""
    flat = run("ep")
    hier = run("ep_hier", num_blocks=4)
    lines = [
        "EP under Addr+L, 4 blocks x 8 cores",
        f"  flat reduction:          exec={flat['exec']:8d}  "
        f"global wb/inv lines = {flat['gwb']}/{flat['ginv']}",
        f"  hierarchical reduction:  exec={hier['exec']:8d}  "
        f"global wb/inv lines = {hier['gwb']}/{hier['ginv']}  "
        f"(local = {hier['lwb']}/{hier['linv']})",
        f"  speedup: {flat['exec'] / hier['exec']:.2f}x",
    ]
    assert hier["gwb"] < flat["gwb"]
    assert hier["exec"] < flat["exec"]
    return "\n".join(lines)


def test_hierarchical_reduction_ablation(benchmark):
    save_result("ablation_hier_reduce", run_once(benchmark, sweep))


if __name__ == "__main__":
    raise SystemExit(bench_main("ablation_hier_reduce", sweep))
