"""Section VII-A: control and storage overhead of both hierarchies.

The paper's 4-block × 8-core machine: the incoherent hierarchy (valid +
per-word dirty bits, MEB/IEB) uses about 102 KB less storage than the
coherent one (hierarchical full-map directory + MESI state bits).
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import bench_main, run_once, save_result

from repro.common.params import inter_block_machine
from repro.eval.report import render_storage, render_table3
from repro.eval.storage import storage_report


def build():
    """Render the storage/architecture tables; returns the report text."""
    machine = inter_block_machine(4, 8)
    report = storage_report(machine)
    text = "\n".join(
        [
            render_table3(machine),
            "",
            render_storage(report),
        ]
    )
    assert 95 <= report.saved_kbytes <= 110  # paper: ~102 KB
    return text


def test_storage_overhead(benchmark):
    save_result("storage_overhead", run_once(benchmark, build))


if __name__ == "__main__":
    raise SystemExit(bench_main("storage_overhead", build))
