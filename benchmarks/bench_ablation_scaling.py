"""Ablation: does B+M+I track HCC as the block scales? (DESIGN.md §6)

The paper evaluates one block size (16 cores).  This sweep runs a
lock-intensive (Volrend) and a barrier-intensive (Ocean) application at
4/8/16 cores and checks that the B+M+I-vs-HCC gap stays bounded as
synchronization frequency per core grows — the scalability argument behind
"about as fast as one with hardware coherence".
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import bench_main, run_once, save_result

from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BASE, INTRA_BMI, INTRA_HCC
from repro.eval.runner import run_intra

CORE_COUNTS = (4, 8, 16)
APPS = ("volrend", "ocean_cont")


def sweep():
    """The core-count scaling sweep; returns the report text."""
    lines = [f"{'app':12s} {'cores':>5s} {'Base/HCC':>9s} {'B+M+I/HCC':>10s}"]
    worst = 0.0
    for app in APPS:
        for cores in CORE_COUNTS:
            params = intra_block_machine(cores)
            hcc = run_intra(
                app, INTRA_HCC, num_threads=cores, machine_params=params
            ).exec_time
            base = run_intra(
                app, INTRA_BASE, num_threads=cores, machine_params=params
            ).exec_time
            bmi = run_intra(
                app, INTRA_BMI, num_threads=cores, machine_params=params
            ).exec_time
            lines.append(
                f"{app:12s} {cores:5d} {base / hcc:9.3f} {bmi / hcc:10.3f}"
            )
            worst = max(worst, bmi / hcc)
    # The headline claim must survive scaling: B+M+I stays near HCC.
    assert worst < 1.35, f"B+M+I drifted to {worst:.2f}x HCC"
    return "\n".join(lines)


def test_core_count_scaling(benchmark):
    save_result("ablation_scaling", run_once(benchmark, sweep))


if __name__ == "__main__":
    raise SystemExit(bench_main("ablation_scaling", sweep))
