"""Ablation: MEB/IEB sizing (DESIGN.md §6).

The paper sizes the MEB at 16 entries and the IEB at 4 (Table III).  The
buffers only earn their keep when a critical section touches several cache
lines, so this sweep uses a table-update microbenchmark: each critical
section performs a strided read-modify-write over an 8-line shared table
(stride interleaves across 4 lines at a time, the IEB's working set).  It
shows (a) diminishing returns past the paper's sizes and (b) graceful
degradation below them — overflow falls back to full WB ALL / redundant
invalidations, never to incorrect execution.

Raytrace (1-line critical sections) is included as a control: there the
buffer sizes barely matter, matching the intuition that the design sizes
target small-but-multi-line critical sections.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import bench_main, run_once, save_result

from repro import BufferParams, Machine, intra_block_machine
from repro.core.config import INTRA_BMI
from repro.isa import ops as isa
from repro.workloads import MODEL_ONE

MEB_SIZES = (0, 2, 4, 8, 16, 64)
IEB_SIZES = (0, 1, 2, 4, 16)

TABLE_WORDS = 128  # 8 lines
ROUNDS = 6


def cs_table_exec(meb: int, ieb: int) -> tuple[int, int]:
    """Run the CS-table microbenchmark; return (exec time, checksum)."""
    params = intra_block_machine(
        8, buffers=BufferParams(meb_entries=meb, ieb_entries=ieb)
    )
    machine = Machine(params, INTRA_BMI, num_threads=8)
    table = machine.array("table", TABLE_WORDS)

    def program(ctx):
        for _ in range(ROUNDS):
            yield from ctx.lock_acquire(0, occ=False)
            # Strided sweep: words 0,16,32,48, 1,17,33,49, ... touches 4
            # lines round-robin, so the IEB needs 4 live entries.
            for w in range(TABLE_WORDS // 2):
                word = (w % 4) * 16 + (w // 4)
                v = yield isa.Read(table.addr(word))
                yield isa.Write(table.addr(word), v + 1)
            yield from ctx.lock_release(0, occ=False)

    machine.spawn_all(program)
    stats = machine.run()
    checksum = sum(machine.read_word(a) for a in table.element_addrs())
    assert checksum == 8 * ROUNDS * (TABLE_WORDS // 2), "lost updates!"
    return stats.exec_time, checksum


def sweep():
    """The MEB/IEB sizing sweep; returns the rendered report text."""
    lines = ["CS-table microbenchmark, B+M+I, 8 cores", ""]
    lines.append("MEB sweep (IEB fixed at 4):")
    meb_times = {}
    for m in MEB_SIZES:
        meb_times[m], _ = cs_table_exec(m, 4)
        lines.append(f"  MEB={m:3d}  exec={meb_times[m]:8d}")
    lines.append("IEB sweep (MEB fixed at 16):")
    ieb_times = {}
    for i in IEB_SIZES:
        ieb_times[i], _ = cs_table_exec(16, i)
        lines.append(f"  IEB={i:3d}  exec={ieb_times[i]:8d}")
    # The paper's sizes sit at/above the knee.
    assert meb_times[16] <= 1.05 * meb_times[64]
    assert meb_times[2] > meb_times[16]  # too-small MEB overflows
    assert ieb_times[4] <= 1.05 * ieb_times[16]
    assert ieb_times[1] > ieb_times[4]  # too-small IEB thrashes
    # Control: raytrace's 1-line critical sections are size-insensitive.
    control = {}
    for m in (2, 16):
        params = intra_block_machine(
            16, buffers=BufferParams(meb_entries=m, ieb_entries=4)
        )
        machine = Machine(params, INTRA_BMI, num_threads=16)
        control[m] = MODEL_ONE["raytrace"](scale=0.5).run_on(machine).exec_time
    lines.append("")
    lines.append(
        f"control (raytrace, 1-line CS): MEB=2 -> {control[2]}, "
        f"MEB=16 -> {control[16]}"
    )
    return "\n".join(lines)


def test_buffer_size_ablation(benchmark):
    save_result("ablation_buffers", run_once(benchmark, sweep))


if __name__ == "__main__":
    raise SystemExit(bench_main("ablation_buffers", sweep))
