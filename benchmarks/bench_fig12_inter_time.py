"""Figure 12: normalized inter-block execution time (HCC/Base/Addr/Addr+L).

Runs EP, IS, CG, and Jacobi on the 4-block × 8-core machine.  Paper
reference: Base is worst; Addr pays off where addresses are known; Addr+L
adds level adaptivity (≈5% over Addr, ≈31% over Base, ≈5% above HCC on
average); EP/IS see no Addr+L benefit (reductions).
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import INTER_SCALE, bench_main, run_once, save_result

from repro.core.config import INTER_CONFIGS
from repro.eval.report import render_fig12
from repro.eval.runner import sweep_inter
from repro.workloads import MODEL_TWO


def sweep():
    """The Figure 12 matrix with its shape assertions."""
    apps = ["cg", "ep", "is", "jacobi"]  # the paper's Figure 12 apps
    results = sweep_inter(
        apps, list(INTER_CONFIGS), scale=INTER_SCALE
    )
    means = {}
    for app, per_cfg in results.items():
        base = per_cfg["HCC"].exec_time
        for cfg, res in per_cfg.items():
            means.setdefault(cfg, []).append(res.exec_time / base)
    avg = {cfg: sum(v) / len(v) for cfg, v in means.items()}
    assert avg["Base"] > avg["Addr"] >= avg["Addr+L"], avg
    assert avg["Addr+L"] < 1.25, "Addr+L must land near HCC (paper: +5%)"
    # Addr+L improves on Base by a large factor (paper: 31%).
    assert (avg["Base"] - avg["Addr+L"]) / avg["Base"] > 0.2
    return results


def test_fig12(benchmark):
    results = run_once(benchmark, sweep)
    save_result("fig12_inter_time", render_fig12(results))


if __name__ == "__main__":
    raise SystemExit(bench_main("fig12_inter_time", sweep))
