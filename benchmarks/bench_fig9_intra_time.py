"""Figure 9: normalized intra-block execution time with stall breakdown.

Runs every SPLASH application under the five upper Table II configurations
on the 16-core block and prints the normalized bars (HCC = 1.0) with the
five-way INV/WB/lock/barrier/rest split.  Paper reference: Base averages
≈1.20, B+M close to HCC, B+I back near Base, B+M+I ≈1.02.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import INTRA_SCALE, bench_main, run_once, save_result

from repro.core.config import INTRA_CONFIGS
from repro.eval.report import render_fig9
from repro.eval.runner import sweep_intra
from repro.workloads import MODEL_ONE


def sweep():
    """The Figure 9 matrix with its shape assertions; returns the results."""
    results = sweep_intra(
        sorted(MODEL_ONE), list(INTRA_CONFIGS), scale=INTRA_SCALE
    )
    # Shape assertions on the mean across applications.
    means = {}
    for app, per_cfg in results.items():
        base = per_cfg["HCC"].exec_time
        for cfg, res in per_cfg.items():
            means.setdefault(cfg, []).append(res.exec_time / base)
    avg = {cfg: sum(v) / len(v) for cfg, v in means.items()}
    assert avg["Base"] > avg["B+M+I"], "Base must be the slowest"
    assert avg["B+M+I"] < 1.25, "B+M+I must be near HCC (paper: +2%)"
    assert avg["B+I"] > avg["B+M"], "IEB alone beats nothing (paper §VII-B)"
    return results


def test_fig9(benchmark):
    results = run_once(benchmark, sweep)
    save_result("fig9_intra_time", render_fig9(results))


if __name__ == "__main__":
    raise SystemExit(bench_main("fig9_intra_time", sweep))
