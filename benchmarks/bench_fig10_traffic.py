"""Figure 10: network traffic of B+M+I relative to HCC (128-bit flits).

For each application, total flits broken into memory / linefill / writeback
/ invalidation.  Paper reference: B+M+I averages ≈4% *less* traffic than HCC
— no invalidation traffic, no false-sharing ping-pong, dirty-word-only
writebacks — despite imprecise (ALL-based) annotations.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import INTRA_SCALE, bench_main, run_once, save_result

from repro.core.config import INTRA_BMI, INTRA_HCC
from repro.eval.report import render_fig10
from repro.eval.runner import sweep_intra
from repro.sim.stats import TrafficCat
from repro.workloads import MODEL_ONE


def sweep():
    """The Figure 10 matrix with its traffic assertions."""
    results = sweep_intra(
        sorted(MODEL_ONE), [INTRA_HCC, INTRA_BMI], scale=INTRA_SCALE
    )
    for app, per_cfg in results.items():
        bmi = per_cfg["B+M+I"].stats
        hcc = per_cfg["HCC"].stats
        # Qualitative claims that hold for every application:
        assert bmi.traffic[TrafficCat.INVALIDATION] == 0, app
        assert hcc.traffic[TrafficCat.INVALIDATION] > 0, app
    return results


def test_fig10(benchmark):
    results = run_once(benchmark, sweep)
    save_result("fig10_traffic", render_fig10(results))


if __name__ == "__main__":
    raise SystemExit(bench_main("fig10_traffic", sweep))
