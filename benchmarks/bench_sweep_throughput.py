"""Sweep-engine throughput: serial vs parallel vs persistent-cache rerun.

Runs the same 4-app × 4-config intra-block matrix three ways — in-process
serial (``jobs=1``), fanned out over worker processes (``jobs=4`` capped at
the CPU count), and a second fully-cached pass against a fresh on-disk
result cache — and archives the wall-clock times and speedups.  Every mode
must produce bit-identical statistics per cell (same ``exec_time``, same
stall breakdown); the ≥2× parallel-speedup assertion only applies on
machines with ≥4 CPUs, and the cached rerun must beat serial by ≥5×
(typically ≥100×: a hit is one JSON read instead of a simulation).
"""

import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import bench_main, run_once, save_result

from repro.common.params import intra_block_machine
from repro.core.config import INTRA_BASE, INTRA_BM, INTRA_BMI, INTRA_HCC
from repro.eval.cache import ResultCache
from repro.eval.parallel import SweepExecutor
from repro.eval.runner import sweep_intra

APPS = ["fft", "lu_cont", "raytrace", "volrend"]
CONFIGS = [INTRA_HCC, INTRA_BASE, INTRA_BM, INTRA_BMI]
KW = dict(num_threads=4, scale=0.5, machine_params=intra_block_machine(4))
PARALLEL_JOBS = min(4, os.cpu_count() or 1)


def _cells(results):
    """Flatten a sweep dict to {(app, config): (exec_time, breakdown)}."""
    return {
        (app, cfg): (r.exec_time, r.breakdown(), r.stats.summary())
        for app, per_cfg in results.items()
        for cfg, r in per_cfg.items()
    }


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def sweep():
    """Serial vs parallel vs cached sweep timing; returns the report text."""
    serial, t_serial = _timed(
        lambda: sweep_intra(APPS, CONFIGS, jobs=1, **KW)
    )
    parallel, t_parallel = _timed(
        lambda: sweep_intra(APPS, CONFIGS, jobs=PARALLEL_JOBS, **KW)
    )
    with tempfile.TemporaryDirectory() as tmp:
        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp))
        sweep_intra(APPS, CONFIGS, executor=warm, **KW)
        hot = SweepExecutor(jobs=1, cache=ResultCache(tmp))
        cached, t_cached = _timed(
            lambda: sweep_intra(APPS, CONFIGS, executor=hot, **KW)
        )
        assert warm.stats.cache_misses == len(APPS) * len(CONFIGS)
        assert hot.stats.cache_hits == len(APPS) * len(CONFIGS)

    # Correctness before speed: all three modes must agree bit-for-bit.
    assert _cells(serial) == _cells(parallel), "parallel diverged from serial"
    assert _cells(serial) == _cells(cached), "cache rehydration diverged"

    par_speedup = t_serial / max(t_parallel, 1e-9)
    cache_speedup = t_serial / max(t_cached, 1e-9)
    if PARALLEL_JOBS >= 4:
        assert par_speedup >= 2.0, (
            f"expected >=2x at jobs={PARALLEL_JOBS}, got {par_speedup:.2f}x"
        )
    assert cache_speedup >= 5.0, (
        f"expected >=5x on a fully-cached rerun, got {cache_speedup:.2f}x"
    )

    rows = [
        f"{'mode':10s} {'wall s':>10s} {'speedup':>9s}",
        f"{'serial':10s} {t_serial:10.3f} {1.0:9.2f}",
        f"{'parallel':10s} {t_parallel:10.3f} {par_speedup:9.2f}"
        f"   (jobs={PARALLEL_JOBS}, cpus={os.cpu_count()})",
        f"{'cached':10s} {t_cached:10.3f} {cache_speedup:9.2f}",
        "",
        f"matrix: {len(APPS)} apps x {len(CONFIGS)} configs "
        f"= {len(APPS) * len(CONFIGS)} cells "
        f"(4 threads, scale {KW['scale']}); all modes bit-identical",
    ]
    return "\n".join(rows)


def test_sweep_throughput(benchmark):
    save_result("sweep_throughput", run_once(benchmark, sweep))


if __name__ == "__main__":
    raise SystemExit(bench_main("sweep_throughput", sweep))
