"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the relevant (application × configuration) sweep inside ``benchmark.pedantic``
(one round — these are simulations, not microbenchmarks), prints the rendered
rows, and archives them under ``benchmarks/results/`` so the EXPERIMENTS.md
numbers can be traced to a concrete run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-app scales for benchmark runs — large enough to be representative,
#: small enough that the whole harness finishes in a few minutes.
INTRA_SCALE = 1.0
INTER_SCALE = 1.0


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
