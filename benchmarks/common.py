"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the relevant (application × configuration) sweep inside ``benchmark.pedantic``
(one round — these are simulations, not microbenchmarks), prints the rendered
rows, and archives them under ``benchmarks/results/`` so the EXPERIMENTS.md
numbers can be traced to a concrete run.  Each archived file also records the
wall-clock seconds of the run that produced it (from :func:`run_once`, or an
explicit ``elapsed=`` argument).
"""

from __future__ import annotations

import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-app scales for benchmark runs — large enough to be representative,
#: small enough that the whole harness finishes in a few minutes.
INTRA_SCALE = 1.0
INTER_SCALE = 1.0

#: Wall-clock seconds of the most recent :func:`run_once`; picked up by
#: :func:`save_result` so every archived file records how long it took.
LAST_RUN_SECONDS: float | None = None


def save_result(name: str, text: str, *, elapsed: float | None = None) -> None:
    """Archive *text* (plus wall-clock seconds) and echo it to stdout."""
    if elapsed is None:
        elapsed = LAST_RUN_SECONDS
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = text + "\n"
    if elapsed is not None:
        body += f"\n[wall-clock: {elapsed:.3f} s]\n"
    (RESULTS_DIR / f"{name}.txt").write_text(body)
    print(f"\n=== {name} ===")
    print(text)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    global LAST_RUN_SECONDS
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    LAST_RUN_SECONDS = time.perf_counter() - t0
    return result
