"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the relevant (application × configuration) sweep inside ``benchmark.pedantic``
(one round — these are simulations, not microbenchmarks), prints the rendered
rows, and archives them under ``benchmarks/results/`` so the EXPERIMENTS.md
numbers can be traced to a concrete run.  Each archived file also records the
wall-clock seconds of the run that produced it (from :func:`run_once`, or an
explicit ``elapsed=`` argument).

Each ``bench_*.py`` file is also directly runnable —
``python benchmarks/bench_fig9_intra_time.py --engine fast --warmup 1
--repeat 3`` — via :func:`bench_main`, which times the sweep and archives
median/p95 wall clock (plus engine and git revision) as ``BENCH_<name>.json``
at the repository root.  That is the performance-trajectory record described
in docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Any, Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-app scales for benchmark runs — large enough to be representative,
#: small enough that the whole harness finishes in a few minutes.
INTRA_SCALE = 1.0
INTER_SCALE = 1.0

#: Wall-clock seconds of the most recent :func:`run_once`; picked up by
#: :func:`save_result` so every archived file records how long it took.
LAST_RUN_SECONDS: float | None = None


def save_result(name: str, text: str, *, elapsed: float | None = None) -> None:
    """Archive *text* (plus wall-clock seconds) and echo it to stdout."""
    if elapsed is None:
        elapsed = LAST_RUN_SECONDS
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    body = text + "\n"
    if elapsed is not None:
        body += f"\n[wall-clock: {elapsed:.3f} s]\n"
    (RESULTS_DIR / f"{name}.txt").write_text(body)
    print(f"\n=== {name} ===")
    print(text)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    global LAST_RUN_SECONDS
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    LAST_RUN_SECONDS = time.perf_counter() - t0
    return result


def bench_main(
    name: str, fn: Callable[[], Any], argv: list[str] | None = None
) -> int:
    """Standalone entry point for one benchmark file.

    Parses ``--engine/--warmup/--repeat/--out``, times *fn* accordingly,
    and archives the median/p95 record as ``BENCH_<name>.json`` (see
    :mod:`repro.eval.bench`).  ``--engine`` is exported as
    ``$REPRO_ENGINE`` so every machine built inside the sweep — including
    in worker processes — resolves the requested core.
    """
    import os

    from repro.eval import bench

    parser = argparse.ArgumentParser(description=f"benchmark {name}")
    parser.add_argument(
        "--engine", choices=("ref", "fast"), default=None,
        help="simulator core to measure (default: $REPRO_ENGINE or ref)",
    )
    parser.add_argument(
        "--warmup", type=int, default=0,
        help="untimed runs before measurement (default: 0)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="timed runs; median and p95 are archived (default: 1)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: BENCH_<name>.json at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    _, seconds = bench.measure(fn, warmup=args.warmup, repeat=args.repeat)
    payload = bench.record(name, seconds, warmup=args.warmup)
    path = bench.write_bench_json(payload, args.out)
    print(
        f"{name}: engine={payload['engine']} rev={payload['git_rev']} "
        f"median={payload['median_s']:.3f}s p95={payload['p95_s']:.3f}s "
        f"({payload['repeat']} run(s)) -> {path}"
    )
    return 0
