"""Figure 11: number of global WBs/INVs — Addr+L normalized to Addr.

Counts WBs that reach the L3 and INVs that reach down to the L2.  Paper
reference: Jacobi drops to ≈25% (boundary exchange localized), CG's INVs to
≈78% (inspector finds same-block producers; WBs stay global), EP and IS stay
at 100% (reductions have no producer-consumer ordering).
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import INTER_SCALE, bench_main, run_once, save_result

from repro.core.config import INTER_ADDR, INTER_ADDR_L
from repro.eval.report import render_fig11
from repro.eval.runner import sweep_inter
from repro.workloads import MODEL_TWO


def sweep():
    """The Figure 11 matrix with its localization assertions."""
    apps = ["cg", "ep", "is", "jacobi"]  # the paper's Figure 11 apps
    results = sweep_inter(
        apps, [INTER_ADDR, INTER_ADDR_L], scale=INTER_SCALE
    )
    # EP: reductions only — no localization at all.
    ep_a = results["ep"]["Addr"].stats
    ep_l = results["ep"]["Addr+L"].stats
    assert ep_l.global_wb_lines == ep_a.global_wb_lines
    assert ep_l.global_inv_lines == ep_a.global_inv_lines
    # CG: INVs partially localized; WBs unchanged (whole-range WB to L3).
    cg_a = results["cg"]["Addr"].stats
    cg_l = results["cg"]["Addr+L"].stats
    assert cg_l.global_wb_lines == cg_a.global_wb_lines
    assert 0.5 < cg_l.global_inv_lines / cg_a.global_inv_lines < 1.0
    # Jacobi: most boundary traffic becomes intra-block.
    ja_a = results["jacobi"]["Addr"].stats
    ja_l = results["jacobi"]["Addr+L"].stats
    assert ja_l.global_wb_lines / ja_a.global_wb_lines < 0.5
    return results


def test_fig11(benchmark):
    results = run_once(benchmark, sweep)
    save_result("fig11_global_ops", render_fig11(results))


if __name__ == "__main__":
    raise SystemExit(bench_main("fig11_global_ops", sweep))
