"""Table I: communication patterns observed in the Model-1 applications.

Regenerates the classification table and *validates* it against observed
behavior: a small instrumented run of each application must actually issue
the synchronization operations its declared patterns imply.
"""

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import bench_main, run_once, save_result

from repro import Machine, intra_block_machine
from repro.core.config import INTRA_BASE
from repro.eval.report import render_table1
from repro.isa import ops as isa
from repro.workloads import MODEL_ONE, Pattern


def observed_patterns(app: str) -> set[str]:
    """Run a scaled instance; classify from the sync primitives it touched."""
    machine = Machine(intra_block_machine(4), INTRA_BASE, num_threads=4)
    workload = MODEL_ONE[app](scale=0.4)
    workload.prepare(machine)
    machine.run()
    out: set[str] = set()
    if machine.sync._barriers:
        out.add(Pattern.BARRIER)
    if machine.sync._locks:
        out.add(Pattern.CRITICAL)
    if machine.sync._flags:
        out.add(Pattern.FLAG)
    return out


def build():
    """Render and validate Table I; returns the report text."""
    rows = [render_table1(), "", "validation (observed sync primitives):"]
    for app, cls in sorted(MODEL_ONE.items()):
        declared = set(cls.main_patterns) | set(cls.other_patterns)
        observed = observed_patterns(app)
        # Every observed primitive must be declared (OCC/data-race are
        # annotations on top of locks, not separate primitives).
        base = {
            p
            for p in declared
            if p in (Pattern.BARRIER, Pattern.CRITICAL, Pattern.FLAG)
        }
        ok = observed <= (base | {Pattern.BARRIER})
        rows.append(f"  {app:14s} observed={sorted(observed)} ok={ok}")
        assert observed & base or not base, (app, observed, declared)
    return "\n".join(rows)


def test_table1(benchmark):
    save_result("table1_patterns", run_once(benchmark, build))


if __name__ == "__main__":
    raise SystemExit(bench_main("table1_patterns", build))
